//! The hash-consed term pool and its rewriting constructors.

use std::collections::HashMap;

use lr_bv::BitVec;

use crate::eval::apply_op;
use crate::op::BvOp;

/// A handle to a term in a [`TermPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The dense index of this term within its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term node. Obtain these from [`TermPool::term`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant bitvector.
    Const(BitVec),
    /// A free variable with a name and width.
    Var {
        /// Variable name; unique within a pool.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// An operator applied to other terms.
    Op {
        /// The operator.
        op: BvOp,
        /// Operand term ids.
        args: Vec<TermId>,
        /// Result width in bits.
        width: u32,
    },
}

/// Counters describing pool behaviour (used by the ablation benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of distinct term nodes allocated.
    pub nodes: u64,
    /// Number of constructor calls answered from the hash-cons table.
    pub cons_hits: u64,
    /// Number of constructor calls answered by a rewrite rule.
    pub rewrite_hits: u64,
}

/// A hash-consed pool of QF_BV terms with constructor-time rewriting.
///
/// All term construction goes through this type. By default every constructor
/// applies local simplification rules (constant folding, identities, commutative
/// normalization); [`TermPool::without_simplification`] disables them, which the
/// ablation benchmark uses to quantify their effect.
#[derive(Debug, Clone)]
pub struct TermPool {
    terms: Vec<Term>,
    dedup: HashMap<Term, TermId>,
    vars: HashMap<String, TermId>,
    simplify: bool,
    stats: PoolStats,
}

impl Default for TermPool {
    fn default() -> Self {
        Self::new()
    }
}

impl TermPool {
    /// Creates an empty pool with simplification enabled.
    pub fn new() -> Self {
        TermPool {
            terms: Vec::new(),
            dedup: HashMap::new(),
            vars: HashMap::new(),
            simplify: true,
            stats: PoolStats::default(),
        }
    }

    /// Creates a pool that performs no constructor-time rewriting (hash-consing is
    /// still performed). Used by the rewriting ablation.
    pub fn without_simplification() -> Self {
        TermPool { simplify: false, ..Self::new() }
    }

    /// Whether constructor-time rewriting is enabled.
    pub fn simplification_enabled(&self) -> bool {
        self.simplify
    }

    /// Pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of distinct term nodes in the pool.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the pool contains no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term node behind an id.
    ///
    /// # Panics
    /// Panics if the id comes from a different pool.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// The width in bits of a term.
    pub fn width(&self, id: TermId) -> u32 {
        match self.term(id) {
            Term::Const(bv) => bv.width(),
            Term::Var { width, .. } => *width,
            Term::Op { width, .. } => *width,
        }
    }

    /// If the term is a constant, its value.
    pub fn as_const(&self, id: TermId) -> Option<&BitVec> {
        match self.term(id) {
            Term::Const(bv) => Some(bv),
            _ => None,
        }
    }

    /// All variable names appearing in the pool.
    pub fn var_names(&self) -> impl Iterator<Item = &str> {
        self.vars.keys().map(|s| s.as_str())
    }

    fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.dedup.get(&term) {
            self.stats.cons_hits += 1;
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.clone());
        self.dedup.insert(term, id);
        self.stats.nodes += 1;
        id
    }

    /// Creates (or retrieves) a constant term.
    pub fn constant(&mut self, value: BitVec) -> TermId {
        self.intern(Term::Const(value))
    }

    /// A zero constant of the given width.
    pub fn zero(&mut self, width: u32) -> TermId {
        self.constant(BitVec::zeros(width))
    }

    /// An all-ones constant of the given width.
    pub fn all_ones(&mut self, width: u32) -> TermId {
        self.constant(BitVec::ones(width))
    }

    /// The 1-bit constant true.
    pub fn true_(&mut self) -> TermId {
        self.constant(BitVec::from_bool(true))
    }

    /// The 1-bit constant false.
    pub fn false_(&mut self) -> TermId {
        self.constant(BitVec::from_bool(false))
    }

    /// The 1-bit constant for `b`.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.constant(BitVec::from_bool(b))
    }

    /// Creates (or retrieves) a free variable.
    ///
    /// # Panics
    /// Panics if a variable with the same name but a different width already exists.
    pub fn var(&mut self, name: &str, width: u32) -> TermId {
        if let Some(&id) = self.vars.get(name) {
            assert_eq!(
                self.width(id),
                width,
                "variable `{name}` redeclared with a different width"
            );
            return id;
        }
        let id = self.intern(Term::Var { name: name.to_string(), width });
        self.vars.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing variable by name.
    pub fn lookup_var(&self, name: &str) -> Option<TermId> {
        self.vars.get(name).copied()
    }

    // ----- generic operator construction -----

    fn result_width(&self, op: BvOp, args: &[TermId]) -> u32 {
        let w = |i: usize| self.width(args[i]);
        match op {
            BvOp::Not | BvOp::Neg => w(0),
            BvOp::And
            | BvOp::Or
            | BvOp::Xor
            | BvOp::Add
            | BvOp::Sub
            | BvOp::Mul
            | BvOp::Udiv
            | BvOp::Urem
            | BvOp::Shl
            | BvOp::Lshr
            | BvOp::Ashr => {
                assert_eq!(w(0), w(1), "{op}: operand width mismatch");
                w(0)
            }
            BvOp::Concat => w(0) + w(1),
            BvOp::Extract { hi, lo } => {
                assert!(
                    hi >= lo && hi < w(0),
                    "extract[{hi}:{lo}] out of range for width {}",
                    w(0)
                );
                hi - lo + 1
            }
            BvOp::ZeroExt { width } | BvOp::SignExt { width } => {
                assert!(width >= w(0), "extension cannot shrink");
                width
            }
            BvOp::Eq | BvOp::Ult | BvOp::Ule | BvOp::Slt | BvOp::Sle => {
                assert_eq!(w(0), w(1), "{op}: operand width mismatch");
                1
            }
            BvOp::RedOr | BvOp::RedAnd | BvOp::RedXor => 1,
            BvOp::Ite => {
                assert_eq!(w(0), 1, "ite condition must be 1 bit");
                assert_eq!(w(1), w(2), "ite branches must have equal widths");
                w(1)
            }
        }
    }

    /// Builds `op(args)`, applying rewriting and hash-consing.
    pub fn mk_op(&mut self, op: BvOp, args: Vec<TermId>) -> TermId {
        assert_eq!(args.len(), op.arity(), "{op}: wrong arity");
        let width = self.result_width(op, &args);
        if self.simplify {
            if let Some(id) = self.try_rewrite(op, &args, width) {
                self.stats.rewrite_hits += 1;
                return id;
            }
        }
        let mut args = args;
        if op.is_commutative() && args.len() == 2 && args[0] > args[1] {
            args.swap(0, 1);
        }
        self.intern(Term::Op { op, args, width })
    }

    fn try_fold(&mut self, op: BvOp, args: &[TermId]) -> Option<TermId> {
        let consts: Option<Vec<BitVec>> = args.iter().map(|&a| self.as_const(a).cloned()).collect();
        let consts = consts?;
        let refs: Vec<&BitVec> = consts.iter().collect();
        let value = apply_op(op, &refs);
        Some(self.constant(value))
    }

    fn is_zero_const(&self, id: TermId) -> bool {
        self.as_const(id).map(|b| b.is_zero()).unwrap_or(false)
    }

    fn is_ones_const(&self, id: TermId) -> bool {
        self.as_const(id).map(|b| b.is_all_ones()).unwrap_or(false)
    }

    fn is_one_const(&self, id: TermId) -> bool {
        self.as_const(id).map(|b| b.to_u64() == Some(1)).unwrap_or(false)
    }

    fn try_rewrite(&mut self, op: BvOp, args: &[TermId], width: u32) -> Option<TermId> {
        if let Some(folded) = self.try_fold(op, args) {
            return Some(folded);
        }
        match op {
            BvOp::And => {
                let (a, b) = (args[0], args[1]);
                if a == b {
                    return Some(a);
                }
                if self.is_zero_const(a) || self.is_zero_const(b) {
                    return Some(self.zero(width));
                }
                if self.is_ones_const(a) {
                    return Some(b);
                }
                if self.is_ones_const(b) {
                    return Some(a);
                }
            }
            BvOp::Or => {
                let (a, b) = (args[0], args[1]);
                if a == b {
                    return Some(a);
                }
                if self.is_ones_const(a) || self.is_ones_const(b) {
                    return Some(self.all_ones(width));
                }
                if self.is_zero_const(a) {
                    return Some(b);
                }
                if self.is_zero_const(b) {
                    return Some(a);
                }
            }
            BvOp::Xor => {
                let (a, b) = (args[0], args[1]);
                if a == b {
                    return Some(self.zero(width));
                }
                if self.is_zero_const(a) {
                    return Some(b);
                }
                if self.is_zero_const(b) {
                    return Some(a);
                }
            }
            BvOp::Add => {
                let (a, b) = (args[0], args[1]);
                if self.is_zero_const(a) {
                    return Some(b);
                }
                if self.is_zero_const(b) {
                    return Some(a);
                }
                // (t + c₁) + c₂ → t + (c₁ + c₂): float constants together so they
                // fold. DSP ALU forms produce chains like ((x + 0xff) + 0x01).
                for (c, t) in [(a, b), (b, a)] {
                    if self.as_const(c).is_none() {
                        continue;
                    }
                    match self.term(t).clone() {
                        Term::Op { op: BvOp::Add, args: inner, .. } => {
                            for (ci, ti) in [(inner[0], inner[1]), (inner[1], inner[0])] {
                                if self.as_const(ci).is_some() {
                                    let folded = self.mk_op(BvOp::Add, vec![ci, c]);
                                    return Some(self.mk_op(BvOp::Add, vec![ti, folded]));
                                }
                            }
                        }
                        // (c₁ − u) + c₂ → (c₁ + c₂) − u.
                        Term::Op { op: BvOp::Sub, args: inner, .. }
                            if self.as_const(inner[0]).is_some() =>
                        {
                            let folded = self.mk_op(BvOp::Add, vec![inner[0], c]);
                            return Some(self.mk_op(BvOp::Sub, vec![folded, inner[1]]));
                        }
                        _ => {}
                    }
                }
                // x + (−y) → x − y: cancels the negate/carry-in encodings DSP ALUs
                // use for subtraction, so candidates normalize to the spec's form.
                for (x, y) in [(a, b), (b, a)] {
                    if let Term::Op { op: BvOp::Neg, args: inner, .. } = self.term(y).clone() {
                        return Some(self.mk_op(BvOp::Sub, vec![x, inner[0]]));
                    }
                }
            }
            BvOp::Sub => {
                let (a, b) = (args[0], args[1]);
                if a == b {
                    return Some(self.zero(width));
                }
                if self.is_zero_const(b) {
                    return Some(a);
                }
                // 0 − x → −x.
                if self.is_zero_const(a) {
                    return Some(self.mk_op(BvOp::Neg, vec![b]));
                }
                // x − (−y) → x + y.
                if let Term::Op { op: BvOp::Neg, args: inner, .. } = self.term(b).clone() {
                    return Some(self.mk_op(BvOp::Add, vec![a, inner[0]]));
                }
                // x − c → x + (−c): subtraction of a constant joins the additive
                // constant chains, where re-association folds it.
                if self.as_const(b).is_some() {
                    let negated = self.mk_op(BvOp::Neg, vec![b]);
                    return Some(self.mk_op(BvOp::Add, vec![a, negated]));
                }
                // Canonical operand order: x − y → −(y − x) when the ids are out of
                // order, so mirrored subtractions (a − b vs. b − a, as produced by
                // swapped DSP port bindings) meet at one node and cancel via the
                // negation rules.
                if a > b && self.as_const(a).is_none() {
                    let flipped = self.mk_op(BvOp::Sub, vec![b, a]);
                    return Some(self.mk_op(BvOp::Neg, vec![flipped]));
                }
            }
            BvOp::Mul => {
                let (a, b) = (args[0], args[1]);
                if self.is_zero_const(a) || self.is_zero_const(b) {
                    return Some(self.zero(width));
                }
                if self.is_one_const(a) {
                    return Some(b);
                }
                if self.is_one_const(b) {
                    return Some(a);
                }
                // (−x) · y → −(x · y): pull negations above multiplies so they meet
                // (and cancel against) the negations the ALU forms introduce.
                for (x, y) in [(a, b), (b, a)] {
                    if let Term::Op { op: BvOp::Neg, args: inner, .. } = self.term(x).clone() {
                        let prod = self.mk_op(BvOp::Mul, vec![inner[0], y]);
                        return Some(self.mk_op(BvOp::Neg, vec![prod]));
                    }
                }
            }
            BvOp::Shl | BvOp::Lshr | BvOp::Ashr if self.is_zero_const(args[1]) => {
                return Some(args[0]);
            }
            BvOp::Not => {
                if let Term::Op { op: BvOp::Not, args: inner, .. } = self.term(args[0]) {
                    return Some(inner[0]);
                }
            }
            BvOp::Neg => {
                if let Term::Op { op: BvOp::Neg, args: inner, .. } = self.term(args[0]) {
                    return Some(inner[0]);
                }
            }
            BvOp::Eq if args[0] == args[1] => {
                return Some(self.true_());
            }
            BvOp::Ult if args[0] == args[1] => {
                return Some(self.false_());
            }
            BvOp::Slt if args[0] == args[1] => {
                return Some(self.false_());
            }
            BvOp::Ule | BvOp::Sle if args[0] == args[1] => {
                return Some(self.true_());
            }
            BvOp::Ite => {
                let (c, t, e) = (args[0], args[1], args[2]);
                if t == e {
                    return Some(t);
                }
                if let Some(cv) = self.as_const(c) {
                    return Some(if cv.is_zero() { e } else { t });
                }
            }
            BvOp::ZeroExt { width: new_width } | BvOp::SignExt { width: new_width } => {
                if self.width(args[0]) == new_width {
                    return Some(args[0]);
                }
                // zext(zext(x)) / sext(sext(x)) compose.
                if let Term::Op { op: inner_op, args: inner, .. } = self.term(args[0]).clone() {
                    match (op, inner_op) {
                        (BvOp::ZeroExt { .. }, BvOp::ZeroExt { .. }) => {
                            return Some(
                                self.mk_op(BvOp::ZeroExt { width: new_width }, vec![inner[0]]),
                            );
                        }
                        (BvOp::SignExt { .. }, BvOp::SignExt { .. }) => {
                            return Some(
                                self.mk_op(BvOp::SignExt { width: new_width }, vec![inner[0]]),
                            );
                        }
                        _ => {}
                    }
                }
            }
            BvOp::Extract { hi, lo } => {
                let arg = args[0];
                if lo == 0 && hi + 1 == self.width(arg) {
                    return Some(arg);
                }
                // Low-bit narrowing: `extract[k:0]` distributes over operators whose
                // low result bits depend only on low operand bits. This is what lets
                // a correct DSP configuration (computing at 48 bits and truncating)
                // normalize to the same term as the behavioral spec (computing at the
                // design width), so that verification succeeds without touching the
                // SAT solver — the role Rosette's partial evaluation plays in the
                // original system.
                if lo == 0 {
                    if let Term::Op { op: inner_op, args: inner, .. } = self.term(arg).clone() {
                        match inner_op {
                            BvOp::Add
                            | BvOp::Sub
                            | BvOp::Mul
                            | BvOp::And
                            | BvOp::Or
                            | BvOp::Xor => {
                                let a = self.mk_op(BvOp::Extract { hi, lo: 0 }, vec![inner[0]]);
                                let b = self.mk_op(BvOp::Extract { hi, lo: 0 }, vec![inner[1]]);
                                return Some(self.mk_op(inner_op, vec![a, b]));
                            }
                            BvOp::Not | BvOp::Neg => {
                                let a = self.mk_op(BvOp::Extract { hi, lo: 0 }, vec![inner[0]]);
                                return Some(self.mk_op(inner_op, vec![a]));
                            }
                            BvOp::Ite => {
                                let t = self.mk_op(BvOp::Extract { hi, lo: 0 }, vec![inner[1]]);
                                let e = self.mk_op(BvOp::Extract { hi, lo: 0 }, vec![inner[2]]);
                                return Some(self.mk_op(BvOp::Ite, vec![inner[0], t, e]));
                            }
                            BvOp::Shl => {
                                // Low bits of a left shift depend only on low bits of
                                // the value, provided the (constant) amount still
                                // fits in the narrowed width.
                                if let Some(amount) =
                                    self.as_const(inner[1]).and_then(|a| a.to_u64())
                                {
                                    if amount > u64::from(hi) {
                                        return Some(self.zero(width));
                                    }
                                    let narrowed_amount =
                                        self.constant(lr_bv::BitVec::from_u64(amount, hi + 1));
                                    let a = self.mk_op(BvOp::Extract { hi, lo: 0 }, vec![inner[0]]);
                                    return Some(self.mk_op(BvOp::Shl, vec![a, narrowed_amount]));
                                }
                            }
                            _ => {}
                        }
                    }
                }
                match self.term(arg).clone() {
                    // extract of extract composes.
                    Term::Op { op: BvOp::Extract { lo: lo2, .. }, args: inner, .. } => {
                        return Some(
                            self.mk_op(
                                BvOp::Extract { hi: hi + lo2, lo: lo + lo2 },
                                vec![inner[0]],
                            ),
                        );
                    }
                    // extract entirely within one side of a concat.
                    Term::Op { op: BvOp::Concat, args: inner, .. } => {
                        let lo_width = self.width(inner[1]);
                        if hi < lo_width {
                            return Some(self.mk_op(BvOp::Extract { hi, lo }, vec![inner[1]]));
                        }
                        if lo >= lo_width {
                            return Some(self.mk_op(
                                BvOp::Extract { hi: hi - lo_width, lo: lo - lo_width },
                                vec![inner[0]],
                            ));
                        }
                    }
                    // extract entirely within the original operand of a zero/sign extension.
                    Term::Op {
                        op: BvOp::ZeroExt { .. } | BvOp::SignExt { .. },
                        args: inner,
                        ..
                    } => {
                        let orig_width = self.width(inner[0]);
                        if hi < orig_width {
                            return Some(self.mk_op(BvOp::Extract { hi, lo }, vec![inner[0]]));
                        }
                        if let Term::Op { op: BvOp::ZeroExt { .. }, .. } = self.term(arg) {
                            if lo >= orig_width {
                                return Some(self.zero(width));
                            }
                        }
                    }
                    _ => {}
                }
            }
            BvOp::RedOr | BvOp::RedAnd if self.width(args[0]) == 1 => {
                return Some(args[0]);
            }
            BvOp::RedXor if self.width(args[0]) == 1 => {
                return Some(args[0]);
            }
            _ => {}
        }
        None
    }

    // ----- convenience constructors -----

    /// Bitwise NOT.
    pub fn not(&mut self, a: TermId) -> TermId {
        self.mk_op(BvOp::Not, vec![a])
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: TermId) -> TermId {
        self.mk_op(BvOp::Neg, vec![a])
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::And, vec![a, b])
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Or, vec![a, b])
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Xor, vec![a, b])
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Add, vec![a, b])
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Sub, vec![a, b])
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Mul, vec![a, b])
    }

    /// Unsigned division.
    pub fn udiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Udiv, vec![a, b])
    }

    /// Unsigned remainder.
    pub fn urem(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Urem, vec![a, b])
    }

    /// Logical shift left.
    pub fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Shl, vec![a, b])
    }

    /// Logical shift right.
    pub fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Lshr, vec![a, b])
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Ashr, vec![a, b])
    }

    /// Concatenation (`a` high, `b` low).
    pub fn concat(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Concat, vec![a, b])
    }

    /// Extraction of bits `hi..=lo`.
    pub fn extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        self.mk_op(BvOp::Extract { hi, lo }, vec![a])
    }

    /// Zero-extension to `width` bits.
    pub fn zext(&mut self, a: TermId, width: u32) -> TermId {
        self.mk_op(BvOp::ZeroExt { width }, vec![a])
    }

    /// Sign-extension to `width` bits.
    pub fn sext(&mut self, a: TermId, width: u32) -> TermId {
        self.mk_op(BvOp::SignExt { width }, vec![a])
    }

    /// Zero-extends or truncates to exactly `width` bits.
    pub fn resize_zext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        if width == w {
            a
        } else if width < w {
            self.extract(a, width - 1, 0)
        } else {
            self.zext(a, width)
        }
    }

    /// Sign-extends or truncates to exactly `width` bits.
    pub fn resize_sext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        if width == w {
            a
        } else if width < w {
            self.extract(a, width - 1, 0)
        } else {
            self.sext(a, width)
        }
    }

    /// Equality (1-bit result).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Eq, vec![a, b])
    }

    /// Disequality (1-bit result).
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Ult, vec![a, b])
    }

    /// Unsigned less-than-or-equal.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Ule, vec![a, b])
    }

    /// Signed less-than.
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Slt, vec![a, b])
    }

    /// Signed less-than-or-equal.
    pub fn sle(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_op(BvOp::Sle, vec![a, b])
    }

    /// If-then-else: `cond ? then_ : else_`.
    pub fn ite(&mut self, cond: TermId, then_: TermId, else_: TermId) -> TermId {
        self.mk_op(BvOp::Ite, vec![cond, then_, else_])
    }

    /// Reduction OR.
    pub fn red_or(&mut self, a: TermId) -> TermId {
        self.mk_op(BvOp::RedOr, vec![a])
    }

    /// Reduction AND.
    pub fn red_and(&mut self, a: TermId) -> TermId {
        self.mk_op(BvOp::RedAnd, vec![a])
    }

    /// Reduction XOR.
    pub fn red_xor(&mut self, a: TermId) -> TermId {
        self.mk_op(BvOp::RedXor, vec![a])
    }

    /// Boolean implication over 1-bit terms.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Conjunction of a list of 1-bit terms (true if the list is empty).
    pub fn and_all(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.true_();
        for &t in terms {
            acc = self.and(acc, t);
        }
        acc
    }

    /// Renders a term as an S-expression (for debugging and golden tests).
    pub fn display(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Const(bv) => bv.to_verilog_literal(),
            Term::Var { name, width } => format!("{name}:{width}"),
            Term::Op { op, args, .. } => {
                let args: Vec<String> = args.iter().map(|&a| self.display(a)).collect();
                format!("({op} {})", args.join(" "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(pool: &mut TermPool, v: u64, w: u32) -> TermId {
        pool.constant(BitVec::from_u64(v, w))
    }

    #[test]
    fn hash_consing_deduplicates() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let a = pool.add(x, y);
        let b = pool.add(x, y);
        assert_eq!(a, b);
        // Commutative normalization: x + y and y + x are the same node.
        let c = pool.add(y, x);
        assert_eq!(a, c);
        assert!(pool.stats().cons_hits > 0);
    }

    #[test]
    fn var_reuse_and_width_check() {
        let mut pool = TermPool::new();
        let x1 = pool.var("x", 8);
        let x2 = pool.var("x", 8);
        assert_eq!(x1, x2);
        assert_eq!(pool.lookup_var("x"), Some(x1));
        assert_eq!(pool.lookup_var("nope"), None);
    }

    #[test]
    #[should_panic]
    fn var_width_conflict_panics() {
        let mut pool = TermPool::new();
        pool.var("x", 8);
        pool.var("x", 16);
    }

    #[test]
    fn constant_folding() {
        let mut pool = TermPool::new();
        let a = c(&mut pool, 5, 8);
        let b = c(&mut pool, 7, 8);
        let sum = pool.add(a, b);
        assert_eq!(pool.as_const(sum), Some(&BitVec::from_u64(12, 8)));
        let prod = pool.mul(a, b);
        assert_eq!(pool.as_const(prod), Some(&BitVec::from_u64(35, 8)));
        let cmp = pool.ult(a, b);
        assert_eq!(pool.as_const(cmp), Some(&BitVec::from_bool(true)));
    }

    #[test]
    fn identity_rewrites() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let zero = pool.zero(8);
        let ones = pool.all_ones(8);
        let one = c(&mut pool, 1, 8);
        assert_eq!(pool.add(x, zero), x);
        assert_eq!(pool.add(zero, x), x);
        assert_eq!(pool.sub(x, zero), x);
        assert_eq!(pool.sub(x, x), zero);
        assert_eq!(pool.mul(x, one), x);
        assert_eq!(pool.mul(x, zero), zero);
        assert_eq!(pool.and(x, ones), x);
        assert_eq!(pool.and(x, zero), zero);
        assert_eq!(pool.and(x, x), x);
        assert_eq!(pool.or(x, zero), x);
        assert_eq!(pool.or(x, ones), ones);
        assert_eq!(pool.xor(x, zero), x);
        assert_eq!(pool.xor(x, x), zero);
    }

    #[test]
    fn structural_rewrites() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let n = pool.not(x);
        assert_eq!(pool.not(n), x);
        let neg = pool.neg(x);
        assert_eq!(pool.neg(neg), x);
        let t = pool.true_();
        assert_eq!(pool.eq(x, x), t);
        let f = pool.false_();
        assert_eq!(pool.ult(x, x), f);
        assert_eq!(pool.ule(x, x), t);
    }

    /// The algebraic-gap rules — `x − x → 0`, `x ^ x → 0`, `x & x → x`,
    /// shift-by-zero — one test per rule, mirrored on the e-graph side by
    /// `crates/egraph/tests/gap_rules.rs`: both rewriting engines must agree.
    #[test]
    fn gap_rules_fold_in_the_pool() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let zero = pool.zero(8);
        // x − x → 0.
        assert_eq!(pool.sub(x, x), zero);
        // x ^ x → 0.
        assert_eq!(pool.xor(x, x), zero);
        // x & x → x, and x | x → x.
        assert_eq!(pool.and(x, x), x);
        assert_eq!(pool.or(x, x), x);
        // Shift-by-zero is the identity for all three shift operators.
        assert_eq!(pool.shl(x, zero), x);
        assert_eq!(pool.lshr(x, zero), x);
        assert_eq!(pool.ashr(x, zero), x);
    }

    #[test]
    fn ite_rewrites() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let t = pool.true_();
        let f = pool.false_();
        assert_eq!(pool.ite(t, x, y), x);
        assert_eq!(pool.ite(f, x, y), y);
        let c = pool.var("c", 1);
        assert_eq!(pool.ite(c, x, x), x);
    }

    #[test]
    fn extract_and_extension_rewrites() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        assert_eq!(pool.extract(x, 7, 0), x);
        assert_eq!(pool.zext(x, 8), x);
        assert_eq!(pool.sext(x, 8), x);

        // extract of concat goes to the right side.
        let y = pool.var("y", 8);
        let cat = pool.concat(x, y);
        let lo = pool.extract(cat, 7, 0);
        assert_eq!(lo, y);
        let hi = pool.extract(cat, 15, 8);
        assert_eq!(hi, x);

        // extract within a zext goes to the original term.
        let wide = pool.zext(x, 32);
        assert_eq!(pool.extract(wide, 7, 0), x);
        let zeros = pool.extract(wide, 31, 8);
        assert_eq!(pool.as_const(zeros), Some(&BitVec::zeros(24)));

        // extract of extract composes.
        let mid = pool.extract(cat, 11, 4);
        let small = pool.extract(mid, 3, 0);
        assert_eq!(small, pool.extract(cat, 7, 4));

        // nested extensions compose.
        let z1 = pool.zext(x, 16);
        let z2 = pool.zext(z1, 32);
        assert_eq!(z2, pool.zext(x, 32));
    }

    #[test]
    fn resize_helpers() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let widened = pool.resize_zext(x, 16);
        assert_eq!(pool.width(widened), 16);
        assert_eq!(pool.resize_zext(x, 8), x);
        let trunc = pool.resize_zext(x, 4);
        assert_eq!(pool.width(trunc), 4);
        let s = pool.resize_sext(x, 12);
        assert_eq!(pool.width(s), 12);
    }

    #[test]
    fn negation_normalization_rewrites() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let zero = pool.zero(8);
        // 0 − x → −x.
        let expect = pool.neg(x);
        assert_eq!(pool.sub(zero, x), expect);
        // x − (−y) → x + y, and x + (−y) → x − y.
        let ny = pool.neg(y);
        let expect = pool.add(x, y);
        assert_eq!(pool.sub(x, ny), expect);
        let expect = pool.sub(x, y);
        assert_eq!(pool.add(x, ny), expect);
        // (−x) · y → −(x · y).
        let nx = pool.neg(x);
        let got = pool.mul(nx, y);
        let prod = pool.mul(x, y);
        let expect = pool.neg(prod);
        assert_eq!(got, expect);
        // Mirrored subtraction: b − a normalizes to −(a − b).
        let ab = pool.sub(x, y);
        let ba = pool.sub(y, x);
        let expect = pool.neg(ab);
        assert_eq!(ba, expect);
        let restored = pool.neg(ba);
        assert_eq!(restored, ab);
    }

    #[test]
    fn constant_chains_reassociate_and_fold() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        // ((x + 0xff) + 0x01) → x: the DSP ALU's subtract-via-carry encoding.
        let ff = c(&mut pool, 0xff, 8);
        let one = c(&mut pool, 1, 8);
        let t = pool.add(x, ff);
        let t = pool.add(t, one);
        assert_eq!(t, x);
        // x − 3 joins the additive chain: (x − 3) + 3 → x.
        let three = c(&mut pool, 3, 8);
        let down = pool.sub(x, three);
        let back = pool.add(down, three);
        assert_eq!(back, x);
        // (0x10 − x) + 0x05 → 0x15 − x.
        let c10 = c(&mut pool, 0x10, 8);
        let c05 = c(&mut pool, 0x05, 8);
        let diff = pool.sub(c10, x);
        let got = pool.add(diff, c05);
        let c15 = c(&mut pool, 0x15, 8);
        let expect = pool.sub(c15, x);
        assert_eq!(got, expect);
    }

    /// Regression for the CEGIS verification blowups: a DSP's negate-path encoding
    /// of a multiply must normalize to the plain multiply, so the disequality
    /// folds to false without any SAT work.
    #[test]
    fn dsp_negate_form_normalizes_to_plain_multiply() {
        // 0 − ((a · (0 − b)) + 0xff + 0x01)  ≡  a · b.
        let mut pool = TermPool::new();
        let a = pool.var("a", 8);
        let b = pool.var("b", 8);
        let spec = pool.mul(a, b);
        let zero = pool.zero(8);
        let nb = pool.sub(zero, b);
        let prod = pool.mul(a, nb);
        let ff = c(&mut pool, 0xff, 8);
        let one = c(&mut pool, 1, 8);
        let t = pool.add(prod, ff);
        let t = pool.add(t, one);
        let cand = pool.sub(zero, t);
        assert_eq!(cand, spec);
        // And the mirrored pre-subtract form: d − (c · (b − a)) ≡ (a − b) · c + d.
        let cc = pool.var("c", 8);
        let d = pool.var("d", 8);
        let amb = pool.sub(a, b);
        let lhs_mul = pool.mul(amb, cc);
        let spec2 = pool.add(lhs_mul, d);
        let bma = pool.sub(b, a);
        let mirrored = pool.mul(cc, bma);
        let cand2 = pool.sub(d, mirrored);
        assert_eq!(cand2, spec2);
    }

    #[test]
    fn without_simplification_builds_nodes() {
        let mut pool = TermPool::without_simplification();
        let x = pool.var("x", 8);
        let zero = pool.zero(8);
        let sum = pool.add(x, zero);
        assert_ne!(sum, x, "no rewriting should happen");
        assert!(matches!(pool.term(sum), Term::Op { op: BvOp::Add, .. }));
    }

    #[test]
    fn width_computation() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let sum = pool.add(x, y);
        assert_eq!(pool.width(sum), 8);
        let eq = pool.eq(x, y);
        assert_eq!(pool.width(eq), 1);
        let cat = pool.concat(x, y);
        assert_eq!(pool.width(cat), 16);
        let e = pool.extract(x, 6, 2);
        assert_eq!(pool.width(e), 5);
        let r = pool.red_xor(x);
        assert_eq!(pool.width(r), 1);
    }

    #[test]
    #[should_panic]
    fn mismatched_widths_panic() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 4);
        pool.add(x, y);
    }

    #[test]
    fn display_sexpr() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let s = pool.add(x, y);
        let d = pool.display(s);
        assert!(d.contains("bvadd"));
        assert!(d.contains("x:8"));
    }

    #[test]
    fn and_all_and_implies() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 1);
        let b = pool.var("b", 1);
        let both = pool.and_all(&[a, b]);
        assert_eq!(pool.width(both), 1);
        let empty = pool.and_all(&[]);
        assert_eq!(pool.as_const(empty), Some(&BitVec::from_bool(true)));
        let t = pool.true_();
        let imp = pool.implies(a, t);
        assert_eq!(pool.as_const(imp), Some(&BitVec::from_bool(true)));
    }
}
