//! Bitvector operators of the QF_BV term language.

use std::fmt;

/// The operators of the term language.
///
/// Widths follow SMT-LIB QF_BV: bitwise and arithmetic operators require equal-width
/// operands and produce that width; comparisons produce width 1; `Concat`, `Extract`,
/// `ZeroExt`, and `SignExt` change widths structurally; `Ite` takes a 1-bit condition
/// and two equal-width branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BvOp {
    /// Bitwise NOT.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (SMT-LIB semantics for division by zero).
    Udiv,
    /// Unsigned remainder.
    Urem,
    /// Logical shift left (shift amount is the second operand).
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Concatenation: first operand forms the high bits.
    Concat,
    /// Extract bits `hi..=lo`.
    Extract {
        /// Highest bit index (inclusive).
        hi: u32,
        /// Lowest bit index (inclusive).
        lo: u32,
    },
    /// Zero-extension to a wider width.
    ZeroExt {
        /// Resulting width.
        width: u32,
    },
    /// Sign-extension to a wider width.
    SignExt {
        /// Resulting width.
        width: u32,
    },
    /// Equality; produces a 1-bit result.
    Eq,
    /// Unsigned less-than; 1-bit result.
    Ult,
    /// Unsigned less-than-or-equal; 1-bit result.
    Ule,
    /// Signed less-than; 1-bit result.
    Slt,
    /// Signed less-than-or-equal; 1-bit result.
    Sle,
    /// If-then-else over bitvectors; the condition is 1-bit wide.
    Ite,
    /// Reduction OR (any bit set); 1-bit result.
    RedOr,
    /// Reduction AND (all bits set); 1-bit result.
    RedAnd,
    /// Reduction XOR (parity); 1-bit result.
    RedXor,
}

impl BvOp {
    /// Whether the operator is commutative in its two operands (used to normalize
    /// argument order for hash-consing).
    pub fn is_commutative(self) -> bool {
        matches!(self, BvOp::And | BvOp::Or | BvOp::Xor | BvOp::Add | BvOp::Mul | BvOp::Eq)
    }

    /// Whether the operator produces a 1-bit (boolean) result regardless of operand
    /// widths.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BvOp::Eq
                | BvOp::Ult
                | BvOp::Ule
                | BvOp::Slt
                | BvOp::Sle
                | BvOp::RedOr
                | BvOp::RedAnd
                | BvOp::RedXor
        )
    }

    /// Number of operands the operator takes.
    pub fn arity(self) -> usize {
        match self {
            BvOp::Not
            | BvOp::Neg
            | BvOp::Extract { .. }
            | BvOp::ZeroExt { .. }
            | BvOp::SignExt { .. }
            | BvOp::RedOr
            | BvOp::RedAnd
            | BvOp::RedXor => 1,
            BvOp::Ite => 3,
            _ => 2,
        }
    }
}

impl fmt::Display for BvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BvOp::Not => "bvnot",
            BvOp::Neg => "bvneg",
            BvOp::And => "bvand",
            BvOp::Or => "bvor",
            BvOp::Xor => "bvxor",
            BvOp::Add => "bvadd",
            BvOp::Sub => "bvsub",
            BvOp::Mul => "bvmul",
            BvOp::Udiv => "bvudiv",
            BvOp::Urem => "bvurem",
            BvOp::Shl => "bvshl",
            BvOp::Lshr => "bvlshr",
            BvOp::Ashr => "bvashr",
            BvOp::Concat => "concat",
            BvOp::Extract { hi, lo } => return write!(f, "extract[{hi}:{lo}]"),
            BvOp::ZeroExt { width } => return write!(f, "zext[{width}]"),
            BvOp::SignExt { width } => return write!(f, "sext[{width}]"),
            BvOp::Eq => "=",
            BvOp::Ult => "bvult",
            BvOp::Ule => "bvule",
            BvOp::Slt => "bvslt",
            BvOp::Sle => "bvsle",
            BvOp::Ite => "ite",
            BvOp::RedOr => "redor",
            BvOp::RedAnd => "redand",
            BvOp::RedXor => "redxor",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_classification() {
        assert!(BvOp::Add.is_commutative());
        assert!(BvOp::And.is_commutative());
        assert!(BvOp::Eq.is_commutative());
        assert!(!BvOp::Sub.is_commutative());
        assert!(!BvOp::Concat.is_commutative());
        assert!(!BvOp::Ult.is_commutative());
    }

    #[test]
    fn predicate_classification() {
        assert!(BvOp::Eq.is_predicate());
        assert!(BvOp::Slt.is_predicate());
        assert!(BvOp::RedXor.is_predicate());
        assert!(!BvOp::Add.is_predicate());
        assert!(!BvOp::Ite.is_predicate());
    }

    #[test]
    fn arity_classification() {
        assert_eq!(BvOp::Not.arity(), 1);
        assert_eq!(BvOp::Extract { hi: 3, lo: 0 }.arity(), 1);
        assert_eq!(BvOp::Add.arity(), 2);
        assert_eq!(BvOp::Ite.arity(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(BvOp::Add.to_string(), "bvadd");
        assert_eq!(BvOp::Extract { hi: 7, lo: 4 }.to_string(), "extract[7:4]");
        assert_eq!(BvOp::ZeroExt { width: 16 }.to_string(), "zext[16]");
    }
}
