//! Property-based tests that tie the three views of the QF_BV semantics together:
//! concrete evaluation, constructor-time rewriting, and bit-blasting.
//!
//! For randomly generated terms `t` and randomly generated environments, we assert
//! that the constraint `t == eval(t)` is satisfiable with the environment fixed (the
//! bit-blasted circuit agrees with the interpreter), and that asserting
//! `t != eval(t)` under the same fixed environment is unsatisfiable.

use lr_bv::BitVec;
use lr_smt::{BvSolver, SatResult, TermId, TermPool};
use proptest::prelude::*;

/// A small expression AST for generating random terms without borrowing a pool
/// inside the proptest strategy.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Const(u64),
    Not(Box<Expr>),
    Neg(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    UltMux(Box<Expr>, Box<Expr>),
}

fn expr_strategy(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf =
        prop_oneof![(0usize..3).prop_map(Expr::Var), (0u64..=u64::MAX).prop_map(Expr::Const),];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| Expr::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::UltMux(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(pool: &mut TermPool, expr: &Expr, width: u32) -> TermId {
    match expr {
        Expr::Var(i) => pool.var(&format!("v{i}"), width),
        Expr::Const(c) => pool.constant(BitVec::from_u64(*c, width)),
        Expr::Not(a) => {
            let a = build(pool, a, width);
            pool.not(a)
        }
        Expr::Neg(a) => {
            let a = build(pool, a, width);
            pool.neg(a)
        }
        Expr::And(a, b) => {
            let (a, b) = (build(pool, a, width), build(pool, b, width));
            pool.and(a, b)
        }
        Expr::Or(a, b) => {
            let (a, b) = (build(pool, a, width), build(pool, b, width));
            pool.or(a, b)
        }
        Expr::Xor(a, b) => {
            let (a, b) = (build(pool, a, width), build(pool, b, width));
            pool.xor(a, b)
        }
        Expr::Add(a, b) => {
            let (a, b) = (build(pool, a, width), build(pool, b, width));
            pool.add(a, b)
        }
        Expr::Sub(a, b) => {
            let (a, b) = (build(pool, a, width), build(pool, b, width));
            pool.sub(a, b)
        }
        Expr::Mul(a, b) => {
            let (a, b) = (build(pool, a, width), build(pool, b, width));
            pool.mul(a, b)
        }
        Expr::Ite(c, a, b) => {
            let c = build(pool, c, width);
            let c1 = pool.red_or(c);
            let (a, b) = (build(pool, a, width), build(pool, b, width));
            pool.ite(c1, a, b)
        }
        Expr::UltMux(a, b) => {
            let (a, b) = (build(pool, a, width), build(pool, b, width));
            let lt = pool.ult(a, b);
            pool.ite(lt, b, a)
        }
    }
}

fn env_for(values: &[u64], width: u32) -> lr_smt::Env {
    values.iter().enumerate().map(|(i, &v)| (format!("v{i}"), BitVec::from_u64(v, width))).collect()
}

fn constrain_env(pool: &mut TermPool, solver: &mut BvSolver, env: &lr_smt::Env) {
    for (name, value) in env {
        let var = pool.var(name, value.width());
        let c = pool.constant(value.clone());
        let eq = pool.eq(var, c);
        solver.assert_true(pool, eq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blasting_agrees_with_evaluation(
        expr in expr_strategy(3),
        vals in proptest::collection::vec(0u64..=u64::MAX, 3),
        width in 1u32..=6,
        simplify in proptest::bool::ANY,
    ) {
        let mut pool = if simplify { TermPool::new() } else { TermPool::without_simplification() };
        let term = build(&mut pool, &expr, width);
        let env = env_for(&vals, width);
        let expected = pool.eval(term, &env).unwrap();

        // SAT direction: term == expected is satisfiable with the inputs pinned.
        let mut solver = BvSolver::new();
        constrain_env(&mut pool, &mut solver, &env);
        let expected_const = pool.constant(expected.clone());
        let eq = pool.eq(term, expected_const);
        solver.assert_true(&pool, eq);
        prop_assert_eq!(solver.check(&pool), SatResult::Sat);

        // UNSAT direction: term != expected contradicts the pinned inputs.
        let mut solver = BvSolver::new();
        constrain_env(&mut pool, &mut solver, &env);
        let ne = pool.ne(term, expected_const);
        solver.assert_true(&pool, ne);
        prop_assert_eq!(solver.check(&pool), SatResult::Unsat);
    }

    #[test]
    fn simplified_and_unsimplified_pools_agree(
        expr in expr_strategy(3),
        vals in proptest::collection::vec(0u64..=u64::MAX, 3),
        width in 1u32..=16,
    ) {
        let env = env_for(&vals, width);
        let mut simplified = TermPool::new();
        let t1 = build(&mut simplified, &expr, width);
        let mut raw = TermPool::without_simplification();
        let t2 = build(&mut raw, &expr, width);
        prop_assert_eq!(simplified.eval(t1, &env).unwrap(), raw.eval(t2, &env).unwrap());
    }

    #[test]
    fn models_check_out_under_evaluation(
        expr in expr_strategy(2),
        width in 1u32..=5,
        target in 0u64..=u64::MAX,
    ) {
        // If the solver says `expr == target` is satisfiable, evaluating the term
        // under the returned model must reproduce `target`.
        let mut pool = TermPool::new();
        let term = build(&mut pool, &expr, width);
        let target_bv = BitVec::from_u64(target, width);
        let target_const = pool.constant(target_bv.clone());
        let eq = pool.eq(term, target_const);
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, eq);
        if solver.check(&pool) == SatResult::Sat {
            let mut env = solver.model(&pool).into_env();
            // Variables not mentioned by the circuit may be missing; fill with zero.
            for i in 0..3 {
                env.entry(format!("v{i}")).or_insert_with(|| BitVec::zeros(width));
            }
            prop_assert_eq!(pool.eval(term, &env).unwrap(), target_bv);
        }
    }
}
