//! Soundness of the bit-blast cache under incremental use (exercised through the
//! public `BvSolver` API, which owns the `BitBlaster`): blasting the same `TermId`
//! twice must yield the *identical* literal vector, and growing the pool with new
//! terms between checks must never invalidate previously returned bits.

use lr_bv::BitVec;
use lr_smt::{BvSolver, SatResult, TermPool};

#[test]
fn blasting_the_same_term_twice_returns_identical_literals() {
    let mut pool = TermPool::new();
    let x = pool.var("x", 8);
    let y = pool.var("y", 8);
    let sum = pool.add(x, y);
    let prod = pool.mul(x, y);
    let mut solver = BvSolver::new();
    for term in [x, y, sum, prod] {
        let first = solver.literals(&pool, term);
        let second = solver.literals(&pool, term);
        assert_eq!(first, second, "repeated blast of the same term must be memoized");
        assert_eq!(first.len(), pool.width(term) as usize);
    }
    let stats = solver.blast_stats();
    assert!(stats.cache_hits >= 4, "second round must be served from the cache");
}

#[test]
fn growing_the_pool_never_invalidates_previous_bits() {
    let mut pool = TermPool::new();
    let x = pool.var("x", 8);
    let five = pool.constant(BitVec::from_u64(5, 8));
    let sum = pool.add(x, five);
    let mut solver = BvSolver::new();
    let sum_bits = solver.literals(&pool, sum);
    let x_bits = solver.literals(&pool, x);
    let cached = solver.blast_stats().cached_terms;

    // Grow the pool substantially: new variables, wide operators, assertions.
    let y = pool.var("y", 8);
    let z = pool.var("z", 16);
    let prod = pool.mul(x, y);
    let wide = pool.zext(prod, 16);
    let shifted = pool.shl(z, z);
    let cmp = pool.ult(wide, shifted);
    solver.assert_true(&pool, cmp);
    assert_ne!(solver.check(&pool), SatResult::Unknown);

    // The old terms' literal vectors are unchanged, bit for bit.
    assert_eq!(solver.literals(&pool, sum), sum_bits);
    assert_eq!(solver.literals(&pool, x), x_bits);
    assert!(solver.blast_stats().cached_terms > cached, "the cache grew, append-only");
}

#[test]
fn cached_bits_stay_consistent_with_models_across_checks() {
    // Assert constraints in two stages on one solver; after each Sat check the
    // model read through the *original* variable bits must satisfy the terms.
    let mut pool = TermPool::new();
    let x = pool.var("x", 8);
    let y = pool.var("y", 8);
    let sum = pool.add(x, y);
    let twenty = pool.constant(BitVec::from_u64(20, 8));
    let eq = pool.eq(sum, twenty);
    let mut solver = BvSolver::new();
    solver.assert_true(&pool, eq);
    assert_eq!(solver.check(&pool), SatResult::Sat);
    let m1 = solver.model(&pool).into_env();
    assert_eq!(pool.eval(eq, &m1).unwrap(), BitVec::from_bool(true));

    // Stage two: constrain x further; the blasted `eq` from stage one still binds.
    let three = pool.constant(BitVec::from_u64(3, 8));
    let x_is_three = pool.eq(x, three);
    solver.assert_true(&pool, x_is_three);
    assert_eq!(solver.check(&pool), SatResult::Sat);
    let m2 = solver.model(&pool).into_env();
    assert_eq!(m2.get("x"), Some(&BitVec::from_u64(3, 8)));
    assert_eq!(m2.get("y"), Some(&BitVec::from_u64(17, 8)));

    // A contradiction with the cached encoding is detected, not silently satisfied.
    let four = pool.constant(BitVec::from_u64(4, 8));
    let x_is_four = pool.eq(x, four);
    solver.assert_true(&pool, x_is_four);
    assert_eq!(solver.check(&pool), SatResult::Unsat);
}

#[test]
fn variable_bits_are_shared_across_all_mentioning_terms() {
    // Two structurally different terms over the same variable must agree on the
    // variable's literal identities — otherwise incremental reuse would let the
    // "same" variable take two values at once.
    let mut pool = TermPool::new();
    let x = pool.var("x", 4);
    let one = pool.constant(BitVec::from_u64(1, 4));
    let inc = pool.add(x, one);
    let dbl = pool.shl(x, one);
    let mut solver = BvSolver::new();
    let _ = solver.literals(&pool, inc);
    let _ = solver.literals(&pool, dbl);
    let x_bits_a = solver.literals(&pool, x);
    // Re-deriving x through a fresh structural path still hits the same bits.
    let masked = pool.and(x, x); // rewrites to x itself
    let x_bits_b = solver.literals(&pool, masked);
    assert_eq!(x_bits_a, x_bits_b);
}
