//! B4: end-to-end synthesis benchmarks — one `lakeroad::map_design` call per
//! architecture on a representative microbenchmark (the per-run cost underlying
//! Figure 6's timing table).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lakeroad::{map_design, MapConfig, Template};
use lr_arch::Architecture;
use lr_ir::{BvOp, Prog, ProgBuilder};

fn add_mul_and(width: u32, stages: u32) -> Prog {
    let mut b = ProgBuilder::new("add_mul_and");
    let a = b.input("a", width);
    let bb = b.input("b", width);
    let c = b.input("c", width);
    let d = b.input("d", width);
    let sum = b.op2(BvOp::Add, a, bb);
    let prod = b.op2(BvOp::Mul, sum, c);
    let mut out = b.op2(BvOp::And, prod, d);
    for _ in 0..stages {
        out = b.reg(out, width);
    }
    b.finish(out)
}

fn mul(width: u32) -> Prog {
    let mut b = ProgBuilder::new("mul");
    let a = b.input("a", width);
    let bb = b.input("b", width);
    let out = b.op2(BvOp::Mul, a, bb);
    b.finish(out)
}

fn bench_synthesis(c: &mut Criterion) {
    let config = MapConfig::single_solver().with_timeout(Duration::from_secs(60));
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.bench_function("xilinx_add_mul_and_w8_s1", |b| {
        let spec = add_mul_and(8, 1);
        let arch = Architecture::xilinx_ultrascale_plus();
        b.iter(|| {
            let outcome = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
            assert!(outcome.is_success());
        })
    });
    group.bench_function("lattice_mul_w8", |b| {
        let spec = mul(8);
        let arch = Architecture::lattice_ecp5();
        b.iter(|| {
            let outcome = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
            assert!(outcome.is_success());
        })
    });
    group.bench_function("intel_mul_w8", |b| {
        let spec = mul(8);
        let arch = Architecture::intel_cyclone10lp();
        b.iter(|| {
            let outcome = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
            assert!(outcome.is_success());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
