//! B5: ablation benchmarks for the design choices called out in DESIGN.md §6:
//! constructor-time rewriting (on/off) and CEGIS vs. brute-force enumeration.

use criterion::{criterion_group, criterion_main, Criterion};
use lr_bv::BitVec;
use lr_ir::{BvOp, HoleDomain, ProgBuilder};
use lr_smt::{BvSolver, SatResult, TermPool};
use lr_synth::enumerate::synthesize_by_enumeration;
use lr_synth::{synthesize, SynthesisConfig, SynthesisTask};

/// The verification query of a correct DSP-style candidate: with rewriting the query
/// collapses before the SAT solver runs; without it the solver must prove a widened
/// multiply equal to a narrow one.
fn verify_query(simplify: bool) -> SatResult {
    let mut pool = if simplify { TermPool::new() } else { TermPool::without_simplification() };
    let a = pool.var("a", 8);
    let b = pool.var("b", 8);
    // Narrow spec: (a * b) at 8 bits.
    let spec = pool.mk_op(BvOp::Mul, vec![a, b]);
    // Widened candidate: extract[7:0](zext(a, 36) * zext(b, 36)).
    let aw = pool.mk_op(BvOp::ZeroExt { width: 36 }, vec![a]);
    let bw = pool.mk_op(BvOp::ZeroExt { width: 36 }, vec![b]);
    let prod = pool.mk_op(BvOp::Mul, vec![aw, bw]);
    let cand = pool.mk_op(BvOp::Extract { hi: 7, lo: 0 }, vec![prod]);
    let eq = pool.mk_op(BvOp::Eq, vec![spec, cand]);
    let ne = pool.mk_op(BvOp::Not, vec![eq]);
    let mut solver = BvSolver::new();
    solver.assert_true(&pool, ne);
    solver.check(&pool)
}

fn bench_rewriting_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rewriting");
    group.sample_size(10);
    group.bench_function("verify_with_rewriting", |b| {
        b.iter(|| assert_eq!(verify_query(true), SatResult::Unsat))
    });
    group.bench_function("verify_without_rewriting", |b| {
        b.iter(|| assert_eq!(verify_query(false), SatResult::Unsat))
    });
    group.finish();
}

fn bench_cegis_vs_enumeration(c: &mut Criterion) {
    // spec: out = a + 173 over 8 bits; one 8-bit AnyConstant hole.
    let mut b = ProgBuilder::new("spec");
    let a = b.input("a", 8);
    let k = b.constant(BitVec::from_u64(173, 8));
    let out = b.op2(BvOp::Add, a, k);
    let spec = b.finish(out);
    let mut b = ProgBuilder::new("sketch");
    let a = b.input("a", 8);
    let h = b.hole("k", 8, HoleDomain::AnyConstant);
    let out = b.op2(BvOp::Add, a, h);
    let sketch = b.finish(out);

    let mut group = c.benchmark_group("ablation_search");
    group.sample_size(10);
    group.bench_function("cegis", |bch| {
        bch.iter(|| {
            let task = SynthesisTask::at(&spec, &sketch, 0);
            let outcome = synthesize(&task, &SynthesisConfig::default()).unwrap();
            assert!(outcome.is_success());
        })
    });
    group.bench_function("enumeration", |bch| {
        bch.iter(|| {
            let task = SynthesisTask::at(&spec, &sketch, 0);
            let outcome = synthesize_by_enumeration(&task, 1 << 16, 6).unwrap();
            assert!(outcome.is_success());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rewriting_ablation, bench_cegis_vs_enumeration);
criterion_main!(benches);
