//! B2: micro-benchmarks of bit-blasting and QF_BV solving.

use criterion::{criterion_group, criterion_main, Criterion};
use lr_bv::BitVec;
use lr_smt::{BvSolver, SatResult, TermPool};

fn factor_query(width: u32, target: u64) -> (TermPool, lr_smt::TermId) {
    let mut pool = TermPool::new();
    let a = pool.var("a", width);
    let b = pool.var("b", width);
    let prod = pool.mul(a, b);
    let t = pool.constant(BitVec::from_u64(target, width));
    let eq = pool.eq(prod, t);
    let one = pool.constant(BitVec::from_u64(1, width));
    let a_gt_1 = pool.ult(one, a);
    let b_gt_1 = pool.ult(one, b);
    let both = pool.and(a_gt_1, b_gt_1);
    let q = pool.and(eq, both);
    (pool, q)
}

fn bench_bitblast(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitblast");
    group.sample_size(10);
    group.bench_function("factor_8bit", |b| {
        b.iter(|| {
            let (pool, q) = factor_query(8, 143);
            let mut solver = BvSolver::new();
            solver.assert_true(&pool, q);
            assert_eq!(solver.check(&pool), SatResult::Sat);
        })
    });
    group.bench_function("add_commutes_10bit_unsat", |b| {
        b.iter(|| {
            let mut pool = TermPool::without_simplification();
            let x = pool.var("x", 10);
            let y = pool.var("y", 10);
            let xy = pool.mk_op(lr_smt::BvOp::Add, vec![x, y]);
            let yx = pool.mk_op(lr_smt::BvOp::Add, vec![y, x]);
            let eq = pool.mk_op(lr_smt::BvOp::Eq, vec![xy, yx]);
            let ne = pool.mk_op(lr_smt::BvOp::Not, vec![eq]);
            let mut solver = BvSolver::new();
            solver.assert_true(&pool, ne);
            assert_eq!(solver.check(&pool), SatResult::Unsat);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bitblast);
criterion_main!(benches);
