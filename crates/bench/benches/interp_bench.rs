//! B3: micro-benchmarks of the ℒlr interpreter on the DSP48E2 primitive model.

use criterion::{criterion_group, criterion_main, Criterion};
use lr_arch::primitives::dsp48e2_semantics;
use lr_bv::BitVec;
use lr_ir::StreamInputs;

fn dsp_env() -> StreamInputs {
    StreamInputs::from_constants(
        [
            ("A", 3u64, 30u32),
            ("B", 5, 18),
            ("C", 100, 48),
            ("D", 7, 27),
            ("CARRYIN", 0, 1),
            ("INMODE", 0, 5),
            ("OPMODE", 0b0_011_00_01, 9),
            ("ALUMODE", 0, 4),
            ("AREG", 1, 1),
            ("BREG", 1, 1),
            ("CREG", 1, 1),
            ("DREG", 1, 1),
            ("ADREG", 0, 1),
            ("MREG", 1, 1),
            ("PREG", 1, 1),
            ("AMULTSEL", 1, 1),
        ]
        .into_iter()
        .map(|(n, v, w)| (n.to_string(), BitVec::from_u64(v, w))),
    )
}

fn bench_interp(c: &mut Criterion) {
    let prog = dsp48e2_semantics();
    let env = dsp_env();
    let mut group = c.benchmark_group("interp");
    group.bench_function("dsp48e2_cycle0", |b| {
        b.iter(|| std::hint::black_box(prog.interp(&env, 0).unwrap()))
    });
    group.bench_function("dsp48e2_cycle5", |b| {
        b.iter(|| std::hint::black_box(prog.interp(&env, 5).unwrap()))
    });
    group.bench_function("dsp48e2_symbolic_cycle2", |b| {
        b.iter(|| {
            let mut pool = lr_smt::TermPool::new();
            std::hint::black_box(prog.to_term(&mut pool, 2))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
