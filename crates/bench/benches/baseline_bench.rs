//! B6: micro-benchmarks of the baseline pattern recognizer and soft-logic estimator
//! over the full Xilinx microbenchmark suite (these are the fast syntactic passes
//! that the paper's Figure 6 timing table shows running in seconds).

use criterion::{criterion_group, criterion_main, Criterion};
use lakeroad::suite::full_suite;
use lr_arch::ArchName;
use lr_baselines::{estimate, BaselineTool};

fn bench_baselines(c: &mut Criterion) {
    let suite = full_suite(ArchName::XilinxUltraScalePlus);
    let specs: Vec<_> = suite.iter().take(200).map(|b| b.build()).collect();
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("sota_model_200_designs", |b| {
        b.iter(|| {
            let total: usize = specs
                .iter()
                .map(|s| estimate(BaselineTool::SotaLike, ArchName::XilinxUltraScalePlus, s).dsps)
                .sum();
            std::hint::black_box(total)
        })
    });
    group.bench_function("yosys_model_200_designs", |b| {
        b.iter(|| {
            let total: usize = specs
                .iter()
                .map(|s| estimate(BaselineTool::YosysLike, ArchName::XilinxUltraScalePlus, s).dsps)
                .sum();
            std::hint::black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
