//! B1: micro-benchmarks of the CDCL SAT substrate (pigeonhole instances).

use criterion::{criterion_group, criterion_main, Criterion};
use lr_sat::{Lit, Solver, Var};

fn pigeonhole(n: usize, m: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..n).map(|_| (0..m).map(|_| s.new_var()).collect()).collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&clause);
    }
    for j in 0..m {
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
            }
        }
    }
    s
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat");
    group.sample_size(10);
    group.bench_function("pigeonhole_6_into_5_unsat", |b| {
        b.iter(|| {
            let mut s = pigeonhole(6, 5);
            std::hint::black_box(s.solve())
        })
    });
    group.bench_function("pigeonhole_8_into_8_sat", |b| {
        b.iter(|| {
            let mut s = pigeonhole(8, 8);
            std::hint::black_box(s.solve())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sat);
criterion_main!(benches);
