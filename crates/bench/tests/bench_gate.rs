//! End-to-end tests of the `bench_gate` checker *binary*: build a baseline
//! directory and a fresh directory of `BENCH_*.json` records, run the real
//! executable, and check its exit code — including the negative case, where a
//! deterministic counter regresses and the gate must fail the build.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_gate_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_sat_record(dir: &Path, conflicts: u64, propagations: u64, gates_pass: bool) {
    std::fs::write(
        dir.join("BENCH_sat.json"),
        format!(
            "{{\"scale\": \"Quick\", \"total_conflicts_modern\": {conflicts}, \
             \"total_propagations_modern\": {propagations}, \
             \"gates_pass\": {gates_pass}, \"benchmarks\": []}}"
        ),
    )
    .unwrap();
}

fn write_serve_record(dir: &Path, warm_hit_rate: f64, gates_pass: bool) {
    std::fs::write(
        dir.join("BENCH_serve.json"),
        format!("{{\"scale\": \"Quick\", \"warm_hit_rate\": {warm_hit_rate}, \"gates_pass\": {gates_pass}}}"),
    )
    .unwrap();
}

fn run_gate_binary(baseline: &Path, fresh: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .arg(baseline)
        .arg(fresh)
        .output()
        .expect("bench_gate binary must run")
}

#[test]
fn gate_passes_when_fresh_counters_match_baselines() {
    let baseline = temp_dir("pass_base");
    let fresh = temp_dir("pass_fresh");
    write_sat_record(&baseline, 10_000, 2_000_000, true);
    write_sat_record(&fresh, 10_000, 2_000_000, true);
    write_serve_record(&baseline, 1.0, true);
    write_serve_record(&fresh, 1.0, true);
    let output = run_gate_binary(&baseline, &fresh);
    assert!(
        output.status.success(),
        "expected pass, got: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("BENCH_sat.json"));
    assert!(stdout.contains("BENCH_serve.json"));
}

#[test]
fn gate_passes_on_improvement_and_small_noise() {
    let baseline = temp_dir("noise_base");
    let fresh = temp_dir("noise_fresh");
    write_sat_record(&baseline, 10_000, 2_000_000, true);
    // 20% fewer conflicts, 4% more propagations: improvement + in-tolerance noise.
    write_sat_record(&fresh, 8_000, 2_080_000, true);
    let output = run_gate_binary(&baseline, &fresh);
    assert!(output.status.success());
}

/// The negative test: a regressed deterministic counter must fail the build.
#[test]
fn gate_fails_on_regressed_deterministic_counter() {
    let baseline = temp_dir("neg_base");
    let fresh = temp_dir("neg_fresh");
    write_sat_record(&baseline, 10_000, 2_000_000, true);
    // 50% more conflicts: far outside tolerance.
    write_sat_record(&fresh, 15_000, 2_000_000, true);
    let output = run_gate_binary(&baseline, &fresh);
    assert!(!output.status.success(), "regression must fail the gate");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("total_conflicts_modern"), "stderr: {stderr}");
    assert!(stderr.contains("regression"));
}

#[test]
fn gate_fails_when_an_embedded_gate_flag_flips() {
    let baseline = temp_dir("flag_base");
    let fresh = temp_dir("flag_fresh");
    write_serve_record(&baseline, 1.0, true);
    write_serve_record(&fresh, 0.5, true); // warm hit rate collapsed
    let output = run_gate_binary(&baseline, &fresh);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("warm cache hit rate"));
}

#[test]
fn gate_fails_when_a_fresh_record_is_missing() {
    let baseline = temp_dir("missing_base");
    let fresh = temp_dir("missing_fresh");
    write_sat_record(&baseline, 100, 100, true);
    // `fresh` has no BENCH_sat.json: the sweep that emits it did not run.
    let output = run_gate_binary(&baseline, &fresh);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("missing or unreadable"));
}

#[test]
fn gate_is_inert_without_baselines() {
    let baseline = temp_dir("inert_base");
    let fresh = temp_dir("inert_fresh");
    write_sat_record(&fresh, 100, 100, true);
    let output = run_gate_binary(&baseline, &fresh);
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("nothing gated"));
}
