//! The tracing-overhead experiment: prove that turning `lr_trace` on changes
//! **nothing** about what the synthesizer computes, and record what the spans
//! cost in wall time.
//!
//! Every benchmark of the DSP sweep runs twice through the same single-solver
//! CEGIS configuration (fixed seed, no timeout, no portfolio) — once with
//! tracing disabled, once enabled. The deterministic counters of the two runs
//! (verdict, iterations, examples, SAT conflicts/propagations, constraints
//! encoded) must be **bit-identical**: spans only observe the pipeline, they
//! must never steer it. The wall-clock overhead ratio is recorded but ungated —
//! it depends on the machine, and the identity gate is the one that matters.
//!
//! The traced pass must also actually produce spans: a run that reports zero
//! events (or loses one of the span names the CLI's stage summary is built on)
//! means the instrumentation quietly rotted, which is its own regression.

use std::collections::BTreeSet;
use std::time::Instant;

use lakeroad::suite::Microbenchmark;
use lakeroad::{generate_sketch, pipeline_depth, Template};
use lr_arch::Architecture;
use lr_synth::{synthesize, SynthesisConfig, SynthesisOutcome, SynthesisTask};

use crate::Scale;

/// Where the machine-readable record is written (repo-relative; CI uploads this
/// exact path as an artifact and `bench_gate` compares it against the committed
/// baseline).
pub const REPORT_PATH: &str = "BENCH_trace.json";

/// Span names the traced pass must emit at least once over the sweep. These are
/// the names `lakeroad --trace`'s stage summary and the batch per-job breakdown
/// aggregate by; losing one silently would blind the observability surface.
pub const REQUIRED_SPANS: [&str; 5] =
    ["cegis", "cegis-iteration", "synth-check", "verify-check", "sat-check"];

/// The deterministic counters of one synthesis run, in one tracing mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceProbe {
    /// `success` / `unsat` / `timeout`.
    pub verdict: &'static str,
    /// CEGIS iterations performed.
    pub iterations: usize,
    /// Counterexamples accumulated (including seeds).
    pub examples: usize,
    /// SAT conflicts across all checks.
    pub conflicts: u64,
    /// SAT unit propagations across all checks.
    pub propagations: u64,
    /// Example-equality constraints encoded.
    pub constraints_encoded: usize,
}

/// One benchmark's untraced/traced pair.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Architecture name.
    pub arch: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Counters with tracing disabled.
    pub untraced: TraceProbe,
    /// Counters with tracing enabled.
    pub traced: TraceProbe,
    /// Untraced wall time (after warmup), milliseconds.
    pub untraced_wall_ms: f64,
    /// Traced wall time, milliseconds.
    pub traced_wall_ms: f64,
}

impl TraceRun {
    /// Whether the traced run reproduced the untraced counters exactly.
    pub fn identical(&self) -> bool {
        self.untraced == self.traced
    }
}

/// The full comparison: every benchmark of the sweep, both modes, plus the
/// span inventory of the traced pass.
#[derive(Debug, Clone)]
pub struct TraceComparison {
    /// The sweep scale.
    pub scale: Scale,
    /// Per-benchmark pairs.
    pub runs: Vec<TraceRun>,
    /// Span events recorded by the traced pass.
    pub traced_events: usize,
    /// Events lost to the bounded per-thread buffers (0 at every shipped scale).
    pub dropped_events: u64,
    /// [`REQUIRED_SPANS`] entries the traced pass never emitted.
    pub missing_spans: Vec<&'static str>,
}

impl TraceComparison {
    /// Benchmarks whose counters differed between modes.
    pub fn counter_mismatches(&self) -> usize {
        self.runs.iter().filter(|r| !r.identical()).count()
    }

    /// Total wall time of one mode, milliseconds.
    pub fn total_ms(&self, traced: bool) -> f64 {
        self.runs.iter().map(|r| if traced { r.traced_wall_ms } else { r.untraced_wall_ms }).sum()
    }

    /// Traced total wall time over untraced — the cost of observation.
    /// Recorded for the record, never gated.
    pub fn overhead_ratio(&self) -> f64 {
        let untraced = self.total_ms(false);
        if untraced <= 0.0 {
            return 1.0;
        }
        self.total_ms(true) / untraced
    }

    /// The experiment's own verdict: counters identical, spans present.
    pub fn gates_pass(&self) -> bool {
        !self.runs.is_empty()
            && self.counter_mismatches() == 0
            && self.traced_events > 0
            && self.missing_spans.is_empty()
    }

    /// Renders the record as a JSON document (no external dependencies; the
    /// format is stable for CI and `bench_gate` consumption).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"untraced_total_ms\": {:.3},\n", self.total_ms(false)));
        out.push_str(&format!("  \"traced_total_ms\": {:.3},\n", self.total_ms(true)));
        out.push_str(&format!("  \"overhead_ratio\": {:.4},\n", self.overhead_ratio()));
        out.push_str(&format!("  \"traced_events\": {},\n", self.traced_events));
        out.push_str(&format!("  \"dropped_events\": {},\n", self.dropped_events));
        out.push_str(&format!("  \"counter_mismatches\": {},\n", self.counter_mismatches()));
        out.push_str("  \"missing_spans\": [");
        for (i, name) in self.missing_spans.iter().enumerate() {
            out.push_str(&format!("{}\"{name}\"", if i > 0 { ", " } else { "" }));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"gates_pass\": {},\n", self.gates_pass()));
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"arch\": \"{}\", \"benchmark\": \"{}\", \"verdict\": \"{}\", \
                 \"iterations\": {}, \"examples\": {}, \"conflicts\": {}, \
                 \"propagations\": {}, \"constraints_encoded\": {}, \"identical\": {}, \
                 \"untraced_wall_ms\": {:.3}, \"traced_wall_ms\": {:.3}}}{}\n",
                r.arch,
                r.benchmark,
                r.untraced.verdict,
                r.untraced.iterations,
                r.untraced.examples,
                r.untraced.conflicts,
                r.untraced.propagations,
                r.untraced.constraints_encoded,
                r.identical(),
                r.untraced_wall_ms,
                r.traced_wall_ms,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON record to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\n-- Tracing overhead and identity ({:?} scale) --", self.scale);
        println!("  {:44} {:>12} {:>12} {:>10}", "benchmark", "off (ms)", "on (ms)", "identical");
        for r in &self.runs {
            println!(
                "  {:44} {:>12.2} {:>12.2} {:>10}",
                format!("{}/{}", r.arch, r.benchmark),
                r.untraced_wall_ms,
                r.traced_wall_ms,
                if r.identical() { "yes" } else { "NO" }
            );
        }
        println!(
            "  total: untraced {:.1} ms, traced {:.1} ms, overhead {:.2}x; \
             {} events recorded ({} dropped)",
            self.total_ms(false),
            self.total_ms(true),
            self.overhead_ratio(),
            self.traced_events,
            self.dropped_events
        );
        if !self.missing_spans.is_empty() {
            println!("  MISSING SPANS: {:?}", self.missing_spans);
        }
        println!("  gates: {}", if self.gates_pass() { "PASS" } else { "FAIL" });
    }
}

/// Prints the summary and writes [`REPORT_PATH`] — the shared tail of the
/// `exp_trace` driver.
pub fn report_and_write(comparison: &TraceComparison) {
    comparison.print_summary();
    match comparison.write_json(REPORT_PATH) {
        Ok(()) => println!("wrote {REPORT_PATH} ({} benchmarks)", comparison.runs.len()),
        Err(e) => eprintln!("failed to write {REPORT_PATH}: {e}"),
    }
}

fn run_one(arch: &Architecture, bench: &Microbenchmark) -> Option<(TraceProbe, f64)> {
    let spec = bench.build();
    let sketch = generate_sketch(Template::Dsp, arch, &spec).ok()?;
    let t = pipeline_depth(&spec);
    let task = SynthesisTask::over_window(&spec, &sketch, t, 2);
    // No timeout: the identity gate needs counters that depend only on the
    // seed, never on the clock. The default iteration cap still bounds the run.
    let config = SynthesisConfig { timeout: None, ..SynthesisConfig::default() };
    let start = Instant::now();
    let outcome = synthesize(&task, &config).ok()?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let verdict = match &outcome {
        SynthesisOutcome::Success(_) => "success",
        SynthesisOutcome::Unsat { .. } => "unsat",
        SynthesisOutcome::Timeout { .. } => "timeout",
    };
    let stats = outcome.stats();
    Some((
        TraceProbe {
            verdict,
            iterations: stats.iterations,
            examples: stats.examples,
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            constraints_encoded: stats.constraints_encoded,
        },
        wall_ms,
    ))
}

/// Runs the comparison over the DSP sweep at `scale`: each benchmark once with
/// tracing off, once with tracing on, then inventories the recorded spans.
pub fn run_trace_comparison(scale: Scale) -> TraceComparison {
    // Start from a clean slate: the identity gate measures *this* experiment's
    // runs, not whatever a previous consumer of the process-global tracer left
    // behind.
    lr_trace::set_enabled(false);
    lr_trace::flush();
    let _ = lr_trace::take_events();

    let mut runs = Vec::new();
    for arch in Architecture::with_dsps() {
        for bench in scale.suite(arch.name()) {
            // Untimed warmup so neither timed mode pays first-touch costs.
            let _ = run_one(&arch, &bench);
            let untraced = run_one(&arch, &bench);
            lr_trace::set_enabled(true);
            let traced = run_one(&arch, &bench);
            lr_trace::set_enabled(false);
            if let (Some((u, u_ms)), Some((t, t_ms))) = (untraced, traced) {
                runs.push(TraceRun {
                    arch: arch.name().to_string(),
                    benchmark: bench.name.clone(),
                    untraced: u,
                    traced: t,
                    untraced_wall_ms: u_ms,
                    traced_wall_ms: t_ms,
                });
            }
        }
    }

    lr_trace::flush();
    let events = lr_trace::take_events();
    let seen: BTreeSet<&str> = events.iter().map(|e| e.name).collect();
    let missing_spans: Vec<&'static str> =
        REQUIRED_SPANS.into_iter().filter(|name| !seen.contains(name)).collect();
    TraceComparison {
        scale,
        runs,
        traced_events: events.len(),
        dropped_events: lr_trace::dropped_events(),
        missing_spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(conflicts: u64) -> TraceProbe {
        TraceProbe {
            verdict: "success",
            iterations: 2,
            examples: 5,
            conflicts,
            propagations: 400,
            constraints_encoded: 10,
        }
    }

    fn comparison(traced_conflicts: u64, traced_events: usize) -> TraceComparison {
        TraceComparison {
            scale: Scale::Quick,
            runs: vec![TraceRun {
                arch: "intel_cyclone10lp".into(),
                benchmark: "mul_w8_s0".into(),
                untraced: probe(34),
                traced: probe(traced_conflicts),
                untraced_wall_ms: 10.0,
                traced_wall_ms: 11.0,
            }],
            traced_events,
            dropped_events: 0,
            missing_spans: Vec::new(),
        }
    }

    #[test]
    fn identical_counters_pass_and_any_drift_fails() {
        let good = comparison(34, 120);
        assert_eq!(good.counter_mismatches(), 0);
        assert!(good.gates_pass());
        assert!((good.overhead_ratio() - 1.1).abs() < 1e-9);

        // One conflict of drift is a gate failure, not a tolerance question.
        let bad = comparison(35, 120);
        assert_eq!(bad.counter_mismatches(), 1);
        assert!(!bad.gates_pass());

        // A traced pass that recorded nothing means the spans rotted.
        let silent = comparison(34, 0);
        assert!(!silent.gates_pass());

        let mut blind = comparison(34, 120);
        blind.missing_spans.push("sat-check");
        assert!(!blind.gates_pass());
    }

    #[test]
    fn json_record_is_well_formed() {
        let json = comparison(34, 120).to_json();
        assert!(json.contains("\"counter_mismatches\": 0"));
        assert!(json.contains("\"overhead_ratio\": 1.1000"));
        assert!(json.contains("\"gates_pass\": true"));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"missing_spans\": []"));
        // The gate's mini parser must accept the record verbatim.
        crate::gate::Json::parse(&json).unwrap();
    }

    #[test]
    fn a_tiny_sweep_reproduces_counters_under_tracing() {
        // The cheapest DSP benchmark, both modes, through the real pipeline.
        // Serialize against other tests of this crate that toggle the
        // process-global tracer: drive the toggles locally and tolerate
        // whatever the ambient enabled state is by comparing counters only.
        let arch = Architecture::intel_cyclone10lp();
        let bench = &Scale::Quick.suite(arch.name())[0];
        let (untraced, _) = run_one(&arch, bench).unwrap();
        lr_trace::set_enabled(true);
        let (traced, _) = run_one(&arch, bench).unwrap();
        lr_trace::set_enabled(false);
        assert_eq!(untraced, traced);
    }
}
