//! The observability experiment: the flight recorder under a mixed workload,
//! recorded in `BENCH_obs.json`.
//!
//! The recorder's contract is *observation only*: turning on `--slow-ms` /
//! `--forensics-dir` must not change a single deterministic synthesis
//! counter. This experiment proves that end to end by running the **same**
//! mixed workload twice against fresh in-process daemons — once with
//! forensics off, once with `slow = 0` and a bundle directory — and
//! comparing the daemons' final deterministic counters field by field.
//!
//! The workload exercises every record shape the recorder knows:
//!
//! 1. **Cold phase** — K distinct suite mappings, each synthesized fresh.
//! 2. **Warm phase** — the same K again, all served from the shared cache.
//! 3. **Poison phase** — one job whose name is poisoned via
//!    [`lr_serve::set_poison_job`], so the worker panics inside its
//!    `catch_unwind` *before any synthesis* — a contained panic in both runs,
//!    contributing zero solver work to either.
//!
//! The forensics-on run additionally checks the observability surfaces
//! themselves: every completed request must leave a retrievable bundle
//! (`slow = 0` dumps everything), every per-id `forensics` fetch must return
//! the record with its span tree, and the `metrics` exposition must pass the
//! OpenMetrics line-checker ([`check_openmetrics`]).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use lakeroad::suite::suite_for;
use lakeroad::MapConfig;
use lr_arch::ArchName;
use lr_serve::{Daemon, DaemonClient, DaemonConfig, ForensicsConfig, Json};

use crate::Scale;

/// Where the machine-readable record is written (repo-relative; CI uploads
/// this exact path as an artifact, next to the other `BENCH_*.json` files).
pub const REPORT_PATH: &str = "BENCH_obs.json";

/// The deterministic counters compared between the forensics-off and
/// forensics-on runs, in a stable order.
pub type CounterMap = BTreeMap<&'static str, u64>;

/// One daemon run's observations.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The deterministic counters from the final `stats` document.
    pub counters: CounterMap,
    /// Admitted jobs (drain summary).
    pub accepted: u64,
    /// Answered jobs (drain summary); `accepted` after a graceful drain.
    pub completed: u64,
    /// Run wall-clock, milliseconds (reported, never gated).
    pub wall_ms: f64,
}

/// The full experiment record.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// The sweep scale.
    pub scale: Scale,
    /// Distinct suite mappings in the cold/warm phases.
    pub distinct: u64,
    /// The forensics-off control run.
    pub off: RunRecord,
    /// The forensics-on run.
    pub on: RunRecord,
    /// Field-wise mismatches between the two runs' deterministic counters.
    pub mismatches: Vec<String>,
    /// Bundles the forensics-on daemon reported written.
    pub bundles_written: u64,
    /// Bundle files actually present in the directory at shutdown.
    pub bundle_files: u64,
    /// Per-id forensics records successfully retrieved with span trees.
    pub records_retrieved: u64,
    /// Problems the OpenMetrics line-checker found in the exposition.
    pub metrics_errors: Vec<String>,
    /// Sample lines from the exposition (reported for eyeballing, ungated).
    pub metrics_lines: u64,
}

impl ObsReport {
    /// Jobs lost across both drains (must be 0).
    pub fn lost(&self) -> u64 {
        (self.off.accepted - self.off.completed) + (self.on.accepted - self.on.completed)
    }

    /// The failed acceptance gates, empty when the experiment is healthy.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if !self.mismatches.is_empty() {
            failures.push(format!(
                "forensics changed {} deterministic counter(s): {}",
                self.mismatches.len(),
                self.mismatches.join(", "),
            ));
        }
        // Cold + warm + poison, all completed, all dumped by `slow = 0`.
        let expected = 2 * self.distinct + 1;
        if self.on.completed != expected || self.off.completed != expected {
            failures.push(format!(
                "workload accounting: {} / {} completed, expected {expected} each",
                self.off.completed, self.on.completed,
            ));
        }
        if self.bundles_written != expected {
            failures.push(format!(
                "{} bundles written, expected one per completed request ({expected})",
                self.bundles_written,
            ));
        }
        if self.bundle_files == 0 {
            failures.push("no bundle files on disk".to_string());
        }
        if self.records_retrieved != self.distinct {
            failures.push(format!(
                "only {} of {} per-id forensics fetches returned a record with spans",
                self.records_retrieved, self.distinct,
            ));
        }
        if !self.metrics_errors.is_empty() {
            failures.push(format!(
                "OpenMetrics exposition rejected: {}",
                self.metrics_errors.join("; "),
            ));
        }
        if self.lost() != 0 {
            failures.push(format!("{} jobs lost across the drains", self.lost()));
        }
        failures
    }

    /// Renders the record as a JSON document (dependency-free, stable for CI).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"distinct\": {},\n", self.distinct));
        out.push_str(&format!("  \"accepted\": {},\n", self.on.accepted));
        out.push_str(&format!("  \"completed\": {},\n", self.on.completed));
        out.push_str(&format!("  \"lost\": {},\n", self.lost()));
        out.push_str(&format!("  \"counter_mismatches\": {},\n", self.mismatches.len()));
        out.push_str(&format!("  \"bundles_written\": {},\n", self.bundles_written));
        out.push_str(&format!("  \"bundle_files\": {},\n", self.bundle_files));
        out.push_str(&format!("  \"records_retrieved\": {},\n", self.records_retrieved));
        out.push_str(&format!("  \"metrics_errors\": {},\n", self.metrics_errors.len()));
        out.push_str(&format!("  \"metrics_lines\": {},\n", self.metrics_lines));
        out.push_str(&format!("  \"off_wall_ms\": {:.3},\n", self.off.wall_ms));
        out.push_str(&format!("  \"on_wall_ms\": {:.3},\n", self.on.wall_ms));
        out.push_str("  \"counters\": {\n");
        let rows: Vec<String> = self
            .on
            .counters
            .iter()
            .map(|(name, value)| format!("    \"{name}\": {value}"))
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  },\n");
        out.push_str(&format!("  \"gates_pass\": {}\n", self.gate_failures().is_empty()));
        out.push_str("}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!(
            "\n-- Observability: {} distinct mappings + poison, forensics off vs on --",
            self.distinct
        );
        println!(
            "  off   {:8.1} ms  {} accepted / {} completed",
            self.off.wall_ms, self.off.accepted, self.off.completed,
        );
        println!(
            "  on    {:8.1} ms  {} accepted / {} completed, {} bundles, {} records fetched",
            self.on.wall_ms,
            self.on.accepted,
            self.on.completed,
            self.bundles_written,
            self.records_retrieved,
        );
        println!(
            "  identity: {} counter mismatches across {} deterministic counters",
            self.mismatches.len(),
            self.on.counters.len(),
        );
        println!(
            "  metrics: {} exposition lines, {} checker errors",
            self.metrics_lines,
            self.metrics_errors.len(),
        );
        for failure in self.gate_failures() {
            println!("  GATE FAILED: {failure}");
        }
    }
}

// ---------------------------------------------------------------------------
// OpenMetrics line-checker
// ---------------------------------------------------------------------------

/// Validates an OpenMetrics exposition: every line must be a comment or a
/// parseable `name{labels} value` sample, the document must end with `# EOF`,
/// and every histogram's `_bucket` series must be cumulative (non-decreasing)
/// with its `+Inf` bucket equal to `_count`. Returns the problems found.
pub fn check_openmetrics(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    if !text.ends_with("# EOF\n") {
        errors.push("missing `# EOF` terminator".to_string());
    }
    // (family+labels-minus-le) -> cumulative bucket values in document order.
    let mut buckets: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value_text)) = line.rsplit_once(' ') else {
            errors.push(format!("line {}: no value separator: `{line}`", lineno + 1));
            continue;
        };
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            other => match other.parse::<f64>() {
                Ok(v) => v,
                Err(_) => {
                    errors.push(format!("line {}: unparseable value `{other}`", lineno + 1));
                    continue;
                }
            },
        };
        let name = series.split('{').next().unwrap_or(series);
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            errors.push(format!("line {}: invalid metric name `{name}`", lineno + 1));
            continue;
        }
        if let Some(family) = name.strip_suffix("_bucket") {
            // Identify the series by family plus its non-`le` labels so
            // labeled histograms don't get merged.
            let labels = series.strip_prefix(name).unwrap_or("");
            let others: Vec<&str> = labels
                .trim_start_matches('{')
                .trim_end_matches('}')
                .split(',')
                .filter(|l| !l.starts_with("le=") && !l.is_empty())
                .collect();
            buckets.entry(format!("{family}|{}", others.join(","))).or_default().push(value);
        } else if let Some(family) = name.strip_suffix("_count") {
            counts.insert(format!("{family}|"), value);
        }
    }
    for (key, series) in &buckets {
        let family = key.split('|').next().unwrap_or(key);
        if series.windows(2).any(|w| w[0] > w[1]) {
            errors.push(format!("histogram `{family}` buckets are not cumulative"));
        }
        if let (Some(&last), Some(&count)) = (series.last(), counts.get(key)) {
            if last != count {
                errors.push(format!("histogram `{family}` +Inf bucket {last} != _count {count}"));
            }
        }
    }
    errors
}

// ---------------------------------------------------------------------------
// The experiment
// ---------------------------------------------------------------------------

/// The poisoned job's suite bench (outside the cold/warm set, which starts at
/// width 8 — see [`run_obs_experiment`]).
const POISON_BENCH: &str = "mul_w18_s0";

fn request_payload(bench: &str, id: u64) -> String {
    format!(
        "{{\"kind\":\"map\",\"id\":{id},\"arch\":\"intel\",\"template\":\"dsp\",\
         \"bench\":\"{bench}\"}}"
    )
}

/// Pulls the deterministic counters out of a final `stats` document.
fn deterministic_counters(stats: &Json) -> CounterMap {
    let mut counters = CounterMap::new();
    let mut put = |name, path: &[&str]| {
        let value = stats.get(path).and_then(Json::as_f64).unwrap_or_default() as u64;
        counters.insert(name, value);
    };
    put("synth_iterations", &["synthesis", "iterations"]);
    put("synth_examples", &["synthesis", "examples"]);
    put("sat_conflicts", &["solver", "conflicts"]);
    put("sat_propagations", &["solver", "propagations"]);
    put("sat_restarts", &["solver", "restarts"]);
    put("cache_hits", &["cache", "hits"]);
    put("cache_misses", &["cache", "misses"]);
    put("cache_stores", &["cache", "stores"]);
    put("cache_served", &["cache", "served"]);
    put("verdict_success", &["verdicts", "success"]);
    put("verdict_unsat", &["verdicts", "unsat"]);
    put("verdict_timeout", &["verdicts", "timeout"]);
    put("verdict_error", &["verdicts", "error"]);
    put("accepted", &["requests", "accepted"]);
    put("completed", &["requests", "completed"]);
    counters
}

/// Drives the mixed workload against one daemon: cold, warm, poison. Returns
/// the final stats document and the drain summary's (accepted, completed).
fn run_workload(config: DaemonConfig, benches: &[String]) -> (Json, u64, u64, f64) {
    let start = std::time::Instant::now();
    let daemon = Daemon::bind(config).expect("daemon binds an ephemeral port");
    let addr = daemon.local_addr();
    let mut client = DaemonClient::connect(addr).expect("daemon accepts connections");

    // Cold then warm: ids 0..K and 100..100+K over the same benches.
    for (i, bench) in benches.iter().enumerate() {
        let doc = client.request(&request_payload(bench, i as u64)).expect("daemon responds");
        assert_eq!(doc.get(&["kind"]).and_then(Json::as_str), Some("mapped"), "{}", doc.render());
    }
    for (i, bench) in benches.iter().enumerate() {
        let doc = client.request(&request_payload(bench, 100 + i as u64)).expect("daemon responds");
        assert_eq!(doc.get(&["from_cache"]).and_then(Json::as_bool), Some(true), "warm miss");
    }
    // Poison: the worker panics inside its catch_unwind before any synthesis,
    // in this run AND the other one — identical zero contribution to both.
    lr_serve::set_poison_job(Some(&format!("bench:{POISON_BENCH}")));
    let doc = client.request(&request_payload(POISON_BENCH, 999)).expect("daemon responds");
    lr_serve::set_poison_job(None);
    assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("error"), "{}", doc.render());

    let stats = client.request("{\"kind\":\"stats\"}").expect("stats responds");
    let summary = daemon.shutdown_and_wait();
    (stats, summary.accepted, summary.completed, start.elapsed().as_secs_f64() * 1e3)
}

/// The forensics-on run's extra checks: per-id retrieval and the metrics
/// exposition. Returns (bundles_written, records_retrieved, metrics_errors,
/// metrics_lines) — gathered over a live daemon, so this drives its own copy
/// of the workload.
fn run_forensic_workload(
    config: DaemonConfig,
    benches: &[String],
) -> (Json, u64, u64, f64, u64, u64, Vec<String>, u64) {
    let start = std::time::Instant::now();
    let daemon = Daemon::bind(config).expect("daemon binds an ephemeral port");
    let addr = daemon.local_addr();
    let mut client = DaemonClient::connect(addr).expect("daemon accepts connections");

    for (i, bench) in benches.iter().enumerate() {
        client.request(&request_payload(bench, i as u64)).expect("daemon responds");
    }
    for (i, bench) in benches.iter().enumerate() {
        client.request(&request_payload(bench, 100 + i as u64)).expect("daemon responds");
    }
    lr_serve::set_poison_job(Some(&format!("bench:{POISON_BENCH}")));
    client.request(&request_payload(POISON_BENCH, 999)).expect("daemon responds");
    lr_serve::set_poison_job(None);

    // Per-id retrieval: every warm id must come back with its span tree.
    let mut retrieved = 0u64;
    for i in 0..benches.len() {
        let payload = format!("{{\"kind\":\"forensics\",\"id\":{}}}", 100 + i);
        let doc = client.request(&payload).expect("forensics responds");
        let has_spans = doc
            .get(&["spans", "traceEvents"])
            .and_then(Json::as_arr)
            .is_some_and(|events| !events.is_empty());
        if doc.get(&["kind"]).and_then(Json::as_str) == Some("forensics") && has_spans {
            retrieved += 1;
        }
    }

    let metrics = client.request("{\"kind\":\"metrics\"}").expect("metrics responds");
    let text = metrics.get(&["text"]).and_then(Json::as_str).unwrap_or_default();
    let metrics_errors = check_openmetrics(text);
    let metrics_lines = text.lines().count() as u64;

    let listing = client.request("{\"kind\":\"forensics\"}").expect("forensics responds");
    let bundles_written =
        listing.get(&["bundles_written"]).and_then(Json::as_f64).unwrap_or_default() as u64;

    let stats = client.request("{\"kind\":\"stats\"}").expect("stats responds");
    let summary = daemon.shutdown_and_wait();
    (
        stats,
        summary.accepted,
        summary.completed,
        start.elapsed().as_secs_f64() * 1e3,
        bundles_written,
        retrieved,
        metrics_errors,
        metrics_lines,
    )
}

fn daemon_config(scale: Scale, forensics: ForensicsConfig) -> DaemonConfig {
    DaemonConfig {
        workers: 2,
        // Single solver: the identity claim compares solver counters between
        // two runs in one process, so the search must be reproducible.
        map: MapConfig::single_solver().with_timeout(scale.timeout(ArchName::IntelCyclone10Lp)),
        forensics,
        ..DaemonConfig::default()
    }
}

/// Runs the full experiment at `scale`: forensics-off control first, then the
/// forensics-on run with `slow = 0` and a temp bundle directory.
pub fn run_obs_experiment(scale: Scale) -> ObsReport {
    let distinct = match scale {
        Scale::Quick => 4usize,
        Scale::Smoke => 8,
        Scale::Full => 12,
    };
    let benches: Vec<String> = suite_for(ArchName::IntelCyclone10Lp, [8u32].into_iter())
        .into_iter()
        .take(distinct)
        .map(|b| b.name)
        .collect();
    assert_eq!(benches.len(), distinct, "the suite has enough mappings at this scale");
    assert!(!benches.contains(&POISON_BENCH.to_string()), "poison bench outside the set");

    // Control first: the forensics run enables span recording process-wide,
    // and the off-run should really be tracing-off.
    lr_trace::reset();
    let (off_stats, off_accepted, off_completed, off_wall) =
        run_workload(daemon_config(scale, ForensicsConfig::default()), &benches);

    let dir: PathBuf = std::env::temp_dir().join(format!("lr_exp_obs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    lr_trace::reset();
    let forensics = ForensicsConfig {
        dir: Some(dir.clone()),
        slow: Some(Duration::ZERO),
        keep: 256,
        ring: 256,
    };
    let (
        on_stats,
        on_accepted,
        on_completed,
        on_wall,
        bundles_written,
        retrieved,
        metrics_errors,
        metrics_lines,
    ) = run_forensic_workload(daemon_config(scale, forensics), &benches);

    let bundle_files =
        std::fs::read_dir(&dir).map(|entries| entries.flatten().count() as u64).unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);

    let off = RunRecord {
        counters: deterministic_counters(&off_stats),
        accepted: off_accepted,
        completed: off_completed,
        wall_ms: off_wall,
    };
    let on = RunRecord {
        counters: deterministic_counters(&on_stats),
        accepted: on_accepted,
        completed: on_completed,
        wall_ms: on_wall,
    };
    let mismatches = off
        .counters
        .iter()
        .filter(|&(name, off_value)| on.counters.get(name) != Some(off_value))
        .map(|(name, off_value)| {
            format!("{name} ({off_value} off vs {} on)", on.counters.get(name).unwrap_or(&0))
        })
        .collect();

    ObsReport {
        scale,
        distinct: distinct as u64,
        off,
        on,
        mismatches,
        bundles_written,
        bundle_files,
        records_retrieved: retrieved,
        metrics_errors,
        metrics_lines,
    }
}

/// Prints the summary, writes [`REPORT_PATH`], and reports gate failures.
pub fn report_and_write(report: &ObsReport) -> Result<(), String> {
    report.print_summary();
    match report.write_json(REPORT_PATH) {
        Ok(()) => println!(
            "wrote {REPORT_PATH} ({} deterministic counters compared)",
            report.on.counters.len(),
        ),
        Err(e) => eprintln!("failed to write {REPORT_PATH}: {e}"),
    }
    let failures = report.gate_failures();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(conflicts: u64) -> CounterMap {
        let mut map = CounterMap::new();
        map.insert("sat_conflicts", conflicts);
        map.insert("verdict_success", 8);
        map.insert("accepted", 9);
        map
    }

    fn sample_report() -> ObsReport {
        ObsReport {
            scale: Scale::Quick,
            distinct: 4,
            off: RunRecord { counters: counters(100), accepted: 9, completed: 9, wall_ms: 500.0 },
            on: RunRecord { counters: counters(100), accepted: 9, completed: 9, wall_ms: 520.0 },
            mismatches: Vec::new(),
            bundles_written: 9,
            bundle_files: 10,
            records_retrieved: 4,
            metrics_errors: Vec::new(),
            metrics_lines: 120,
        }
    }

    #[test]
    fn healthy_reports_pass_the_gates() {
        let report = sample_report();
        assert!(report.gate_failures().is_empty(), "{:?}", report.gate_failures());
        assert_eq!(report.lost(), 0);
    }

    #[test]
    fn each_gate_trips() {
        let mut drift = sample_report();
        drift.mismatches.push("sat_conflicts (100 off vs 120 on)".to_string());
        assert!(drift.gate_failures().iter().any(|f| f.contains("deterministic counter")));

        let mut unbundled = sample_report();
        unbundled.bundles_written = 5;
        assert!(unbundled.gate_failures().iter().any(|f| f.contains("bundles written")));

        let mut unfetched = sample_report();
        unfetched.records_retrieved = 2;
        assert!(unfetched.gate_failures().iter().any(|f| f.contains("per-id forensics")));

        let mut malformed = sample_report();
        malformed.metrics_errors.push("missing `# EOF` terminator".to_string());
        assert!(malformed.gate_failures().iter().any(|f| f.contains("OpenMetrics")));

        let mut lost = sample_report();
        lost.on.completed = 8;
        assert!(lost.gate_failures().iter().any(|f| f.contains("lost")));

        let mut short = sample_report();
        short.off.completed = 8;
        short.off.accepted = 8;
        assert!(short.gate_failures().iter().any(|f| f.contains("workload accounting")));
    }

    #[test]
    fn json_report_is_well_formed() {
        let json = sample_report().to_json();
        assert!(json.contains("\"gates_pass\": true"));
        assert!(json.contains("\"counter_mismatches\": 0"));
        assert!(json.contains("\"sat_conflicts\": 100"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn openmetrics_checker_accepts_a_valid_exposition() {
        let text = "# TYPE lakeroad_daemon_requests counter\n\
                    lakeroad_daemon_requests_total{kind=\"ping\"} 3\n\
                    # TYPE lakeroad_latency_us histogram\n\
                    lakeroad_latency_us_bucket{le=\"1\"} 1\n\
                    lakeroad_latency_us_bucket{le=\"2\"} 4\n\
                    lakeroad_latency_us_bucket{le=\"+Inf\"} 5\n\
                    lakeroad_latency_us_sum 12\n\
                    lakeroad_latency_us_count 5\n\
                    # EOF\n";
        assert_eq!(check_openmetrics(text), Vec::<String>::new());
    }

    #[test]
    fn openmetrics_checker_rejects_the_broken_shapes() {
        assert!(check_openmetrics("lakeroad_x 1\n").iter().any(|e| e.contains("EOF")));
        assert!(check_openmetrics("lakeroad_x notanumber\n# EOF\n")
            .iter()
            .any(|e| e.contains("unparseable value")));
        assert!(check_openmetrics("bad-name 1\n# EOF\n")
            .iter()
            .any(|e| e.contains("invalid metric name")));
        let non_monotone = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                            h_bucket{le=\"+Inf\"} 5\nh_count 5\n# EOF\n";
        assert!(check_openmetrics(non_monotone).iter().any(|e| e.contains("not cumulative")));
        let count_drift = "h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 6\n# EOF\n";
        assert!(check_openmetrics(count_drift).iter().any(|e| e.contains("+Inf bucket")));
    }
}
