//! The equality-saturation experiment: measure what the `lr_egraph` subsystem
//! does across its three integration layers, and record it in a machine-readable
//! `BENCH_egraph.json` so the rewriting trajectory is tracked run over run.
//!
//! Three sections:
//!
//! 1. **Monster folds** — the PR-2 verification disequalities (DSP negate path,
//!    mirrored subtraction, carry-chain truncation) built in a *non-simplifying*
//!    pool and folded by saturation alone: fold verdict, node counts, iterations.
//! 2. **Spec canonicalization** — `Prog::saturated` over the sweep suites:
//!    program size before/after and saturation counters.
//! 3. **CEGIS ablation** — the DSP sweep synthesized with the e-graph pre-fold on
//!    and off (single solver, like `exp_cegis`): wall time, whether verification
//!    ever reached SAT, and the fold counters.

use std::time::Instant;

use lakeroad::suite::Microbenchmark;
use lakeroad::{generate_sketch, pipeline_depth, Template};
use lr_arch::Architecture;
use lr_bv::BitVec;
use lr_egraph::rules::bv_rules;
use lr_egraph::{fold_term, Limits};
use lr_smt::{TermId, TermPool};
use lr_synth::{synthesize, SynthesisConfig, SynthesisOutcome, SynthesisTask};

use crate::Scale;

/// Where the machine-readable record is written (repo-relative; CI uploads this
/// exact path as an artifact, next to `BENCH_cegis.json`).
pub const REPORT_PATH: &str = "BENCH_egraph.json";

/// One monster-disequality fold record.
#[derive(Debug, Clone)]
pub struct MonsterRecord {
    /// Which disequality.
    pub name: &'static str,
    /// Whether saturation alone folded it to constant false.
    pub folded: bool,
    /// Pool nodes reachable from the disequality before folding.
    pub input_nodes: usize,
    /// Nodes of the extracted term (1 when folded to a constant).
    pub output_nodes: usize,
    /// Saturation iterations.
    pub iterations: usize,
    /// E-nodes at the end of the run.
    pub enodes: usize,
    /// Wall-clock time of the fold.
    pub wall_ms: f64,
}

/// One spec-canonicalization record.
#[derive(Debug, Clone)]
pub struct SpecRecord {
    /// Architecture name.
    pub arch: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Program nodes before canonicalization.
    pub nodes_before: usize,
    /// Program nodes after canonicalization.
    pub nodes_after: usize,
    /// Saturation iterations.
    pub iterations: usize,
    /// E-nodes at the end of the run.
    pub enodes: usize,
    /// E-classes at the end of the run.
    pub classes: usize,
    /// Wall-clock time of the pass.
    pub wall_ms: f64,
}

/// One CEGIS ablation record (one benchmark in one mode).
#[derive(Debug, Clone)]
pub struct EgraphCegisRun {
    /// Architecture name.
    pub arch: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Whether the e-graph pre-fold was on.
    pub egraph: bool,
    /// `success` / `unsat` / `timeout`.
    pub verdict: &'static str,
    /// Measured wall-clock time.
    pub wall_ms: f64,
    /// Disequalities handed to the e-graph.
    pub egraph_attempts: usize,
    /// Of those, how many folded to false (no SAT).
    pub egraph_folds: usize,
    /// Whether verification ever reached the SAT solver.
    pub verification_used_sat: bool,
    /// SAT conflicts across the run.
    pub conflicts: u64,
}

/// The full experiment record.
#[derive(Debug, Clone)]
pub struct EgraphReport {
    /// The sweep scale.
    pub scale: Scale,
    /// Section 1: monster folds.
    pub monsters: Vec<MonsterRecord>,
    /// Section 2: spec canonicalization.
    pub specs: Vec<SpecRecord>,
    /// Section 3: CEGIS ablation, on/off interleaved per benchmark.
    pub cegis: Vec<EgraphCegisRun>,
}

impl EgraphReport {
    /// Whether every monster disequality folded by saturation alone — the
    /// acceptance gate this experiment exists to watch.
    pub fn all_monsters_fold(&self) -> bool {
        !self.monsters.is_empty() && self.monsters.iter().all(|m| m.folded)
    }

    /// Total CEGIS wall time of one mode, in milliseconds.
    pub fn cegis_total_ms(&self, egraph: bool) -> f64 {
        self.cegis.iter().filter(|r| r.egraph == egraph).map(|r| r.wall_ms).sum()
    }

    /// Renders the record as a JSON document (dependency-free, like
    /// `BENCH_cegis.json`; the format is stable for CI consumption).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"all_monsters_fold\": {},\n", self.all_monsters_fold()));
        out.push_str("  \"monsters\": [\n");
        for (i, m) in self.monsters.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"folded\": {}, \"input_nodes\": {}, \
                 \"output_nodes\": {}, \"iterations\": {}, \"enodes\": {}, \"wall_ms\": {:.3}}}{}\n",
                m.name,
                m.folded,
                m.input_nodes,
                m.output_nodes,
                m.iterations,
                m.enodes,
                m.wall_ms,
                if i + 1 < self.monsters.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"spec_saturations\": [\n");
        for (i, s) in self.specs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"arch\": \"{}\", \"benchmark\": \"{}\", \"nodes_before\": {}, \
                 \"nodes_after\": {}, \"iterations\": {}, \"enodes\": {}, \"classes\": {}, \
                 \"wall_ms\": {:.3}}}{}\n",
                s.arch,
                s.benchmark,
                s.nodes_before,
                s.nodes_after,
                s.iterations,
                s.enodes,
                s.classes,
                s.wall_ms,
                if i + 1 < self.specs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"cegis_total_wall_ms_egraph\": {:.3},\n  \"cegis_total_wall_ms_no_egraph\": {:.3},\n",
            self.cegis_total_ms(true),
            self.cegis_total_ms(false)
        ));
        out.push_str("  \"cegis\": [\n");
        for (i, r) in self.cegis.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"arch\": \"{}\", \"benchmark\": \"{}\", \"egraph\": {}, \"verdict\": \"{}\", \
                 \"wall_ms\": {:.3}, \"egraph_attempts\": {}, \"egraph_folds\": {}, \
                 \"verification_used_sat\": {}, \"conflicts\": {}}}{}\n",
                r.arch,
                r.benchmark,
                r.egraph,
                r.verdict,
                r.wall_ms,
                r.egraph_attempts,
                r.egraph_folds,
                r.verification_used_sat,
                r.conflicts,
                if i + 1 < self.cegis.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\n-- Equality saturation: monster disequalities (saturation alone) --");
        for m in &self.monsters {
            println!(
                "  {:26} {}  {} -> {} nodes, {} iters, {} e-nodes, {:.2} ms",
                m.name,
                if m.folded { "folds to false" } else { "NOT DECIDED  " },
                m.input_nodes,
                m.output_nodes,
                m.iterations,
                m.enodes,
                m.wall_ms,
            );
        }
        println!("\n-- Spec canonicalization (Prog::saturated over the sweep) --");
        for s in &self.specs {
            println!(
                "  {:44} {:>3} -> {:>3} nodes, {} iters, {:.2} ms",
                format!("{}/{}", s.arch, s.benchmark),
                s.nodes_before,
                s.nodes_after,
                s.iterations,
                s.wall_ms,
            );
        }
        println!("\n-- CEGIS with / without the e-graph pre-fold --");
        println!(
            "  {:44} {:>12} {:>12} {:>9} {:>7}",
            "benchmark", "egraph (ms)", "no-eg (ms)", "folds", "SAT?"
        );
        let mut i = 0;
        while i + 1 < self.cegis.len() {
            let (on, off) = (&self.cegis[i], &self.cegis[i + 1]);
            debug_assert!(on.egraph && !off.egraph);
            println!(
                "  {:44} {:>12.2} {:>12.2} {:>4}/{:<4} {:>7}",
                format!("{}/{}", on.arch, on.benchmark),
                on.wall_ms,
                off.wall_ms,
                on.egraph_folds,
                on.egraph_attempts,
                if on.verification_used_sat { "yes" } else { "no" },
            );
            i += 2;
        }
        println!(
            "  total: egraph {:.1} ms, no-egraph {:.1} ms",
            self.cegis_total_ms(true),
            self.cegis_total_ms(false)
        );
    }
}

/// Prints the summary and writes [`REPORT_PATH`].
pub fn report_and_write(report: &EgraphReport) {
    report.print_summary();
    match report.write_json(REPORT_PATH) {
        Ok(()) => println!(
            "wrote {REPORT_PATH} ({} monsters, {} specs, {} cegis runs)",
            report.monsters.len(),
            report.specs.len(),
            report.cegis.len()
        ),
        Err(e) => eprintln!("failed to write {REPORT_PATH}: {e}"),
    }
}

/// Builds the three monster disequalities in a non-simplifying pool, so folding
/// them is saturation's work alone. Mirrors
/// `crates/egraph/tests/monster_disequalities.rs`.
fn monster_terms(pool: &mut TermPool) -> Vec<(&'static str, TermId)> {
    let a = pool.var("a", 8);
    let b = pool.var("b", 8);
    let c = pool.var("c", 8);
    let d = pool.var("d", 8);
    let zero = pool.zero(8);
    let mut out = Vec::new();

    // DSP negate path: 0 − ((a · (0 − b)) + 0xff + 0x01) vs a · b.
    let spec = pool.mul(a, b);
    let nb = pool.sub(zero, b);
    let prod = pool.mul(a, nb);
    let ff = pool.constant(BitVec::from_u64(0xff, 8));
    let one = pool.constant(BitVec::from_u64(1, 8));
    let t = pool.add(prod, ff);
    let t = pool.add(t, one);
    let cand = pool.sub(zero, t);
    out.push(("dsp-negate-path", pool.ne(spec, cand)));

    // Mirrored subtraction: d − (c · (b − a)) vs (a − b) · c + d.
    let amb = pool.sub(a, b);
    let prod = pool.mul(amb, c);
    let spec = pool.add(prod, d);
    let bma = pool.sub(b, a);
    let mirrored = pool.mul(c, bma);
    let cand = pool.sub(d, mirrored);
    out.push(("mirrored-subtraction", pool.ne(spec, cand)));

    // Carry-chain truncation: extract[7:0]((zext48(a)·zext48(b) + ~0) + 1) vs a·b.
    let spec = pool.mul(a, b);
    let wa = pool.zext(a, 48);
    let wb = pool.zext(b, 48);
    let wide = pool.mul(wa, wb);
    let ones = pool.all_ones(48);
    let one48 = pool.constant(BitVec::from_u64(1, 48));
    let t = pool.add(wide, ones);
    let t = pool.add(t, one48);
    let cand = pool.extract(t, 7, 0);
    out.push(("carry-chain-truncation", pool.ne(spec, cand)));
    out
}

fn run_monsters() -> Vec<MonsterRecord> {
    let mut pool = TermPool::without_simplification();
    let rules = bv_rules();
    monster_terms(&mut pool)
        .into_iter()
        .map(|(name, ne)| {
            let start = Instant::now();
            let (folded, report) = fold_term(&mut pool, ne, &rules, &Limits::verifier());
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let folded_false = pool.as_const(folded).map(|v| v.is_zero()).unwrap_or(false);
            MonsterRecord {
                name,
                folded: folded_false,
                input_nodes: report.input_nodes,
                output_nodes: report.output_nodes,
                iterations: report.stats.iterations,
                enodes: report.stats.enodes,
                wall_ms,
            }
        })
        .collect()
}

fn run_specs(scale: Scale) -> Vec<SpecRecord> {
    let mut out = Vec::new();
    for arch in Architecture::with_dsps() {
        for bench in scale.suite(arch.name()) {
            let spec = bench.build();
            let start = Instant::now();
            let outcome = spec.saturated_with_stats(&Limits::default());
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            out.push(SpecRecord {
                arch: arch.name().to_string(),
                benchmark: bench.name.clone(),
                nodes_before: spec.len(),
                nodes_after: outcome.prog.len(),
                iterations: outcome.stats.iterations,
                enodes: outcome.stats.enodes,
                classes: outcome.stats.classes,
                wall_ms,
            });
        }
    }
    out
}

fn run_cegis_one(
    arch: &Architecture,
    bench: &Microbenchmark,
    scale: Scale,
    egraph: bool,
) -> Option<EgraphCegisRun> {
    let spec = bench.build();
    let spec = if egraph { spec.saturated() } else { spec };
    let sketch = generate_sketch(Template::Dsp, arch, &spec).ok()?;
    let t = pipeline_depth(&spec);
    let task = SynthesisTask::over_window(&spec, &sketch, t, 2);
    let config = SynthesisConfig {
        timeout: Some(scale.timeout(arch.name())),
        egraph,
        ..SynthesisConfig::default()
    };
    let start = Instant::now();
    let outcome = synthesize(&task, &config).ok()?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let (verdict, stats) = match &outcome {
        SynthesisOutcome::Success(s) => ("success", &s.stats),
        SynthesisOutcome::Unsat { stats } => ("unsat", stats),
        SynthesisOutcome::Timeout { stats } => ("timeout", stats),
    };
    Some(EgraphCegisRun {
        arch: arch.name().to_string(),
        benchmark: bench.name.clone(),
        egraph,
        verdict,
        wall_ms,
        egraph_attempts: stats.egraph_attempts,
        egraph_folds: stats.egraph_folds,
        verification_used_sat: stats.verification_used_sat,
        conflicts: stats.conflicts,
    })
}

fn run_cegis(scale: Scale) -> Vec<EgraphCegisRun> {
    let mut runs = Vec::new();
    for arch in Architecture::with_dsps() {
        for bench in scale.suite(arch.name()) {
            // Untimed warmup (allocator growth, page faults).
            let _ = run_cegis_one(&arch, &bench, scale, false);
            let pair: Vec<EgraphCegisRun> = [true, false]
                .into_iter()
                .filter_map(|mode| run_cegis_one(&arch, &bench, scale, mode))
                .collect();
            match pair.len() {
                2 => runs.extend(pair),
                0 => {}
                _ => eprintln!(
                    "warning: dropping unpaired egraph cegis runs for {}/{}",
                    arch.name(),
                    bench.name
                ),
            }
        }
    }
    runs
}

/// Runs the full experiment at `scale`.
pub fn run_egraph_experiment(scale: Scale) -> EgraphReport {
    EgraphReport {
        scale,
        monsters: run_monsters(),
        specs: run_specs(scale),
        cegis: run_cegis(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monsters_fold_by_saturation_alone() {
        let monsters = run_monsters();
        assert_eq!(monsters.len(), 3);
        for m in &monsters {
            assert!(m.folded, "{} did not fold", m.name);
            assert_eq!(m.output_nodes, 1);
            assert!(m.input_nodes > 1);
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = EgraphReport {
            scale: Scale::Quick,
            monsters: vec![MonsterRecord {
                name: "dsp-negate-path",
                folded: true,
                input_nodes: 12,
                output_nodes: 1,
                iterations: 4,
                enodes: 90,
                wall_ms: 1.5,
            }],
            specs: vec![SpecRecord {
                arch: "intel_cyclone10lp".into(),
                benchmark: "mul_8b_0stage".into(),
                nodes_before: 4,
                nodes_after: 3,
                iterations: 3,
                enodes: 20,
                classes: 10,
                wall_ms: 0.4,
            }],
            cegis: vec![
                EgraphCegisRun {
                    arch: "intel_cyclone10lp".into(),
                    benchmark: "mul_8b_0stage".into(),
                    egraph: true,
                    verdict: "success",
                    wall_ms: 10.0,
                    egraph_attempts: 1,
                    egraph_folds: 1,
                    verification_used_sat: false,
                    conflicts: 5,
                },
                EgraphCegisRun {
                    arch: "intel_cyclone10lp".into(),
                    benchmark: "mul_8b_0stage".into(),
                    egraph: false,
                    verdict: "success",
                    wall_ms: 12.0,
                    egraph_attempts: 0,
                    egraph_folds: 0,
                    verification_used_sat: true,
                    conflicts: 40,
                },
            ],
        };
        let json = report.to_json();
        assert!(report.all_monsters_fold());
        assert!(json.contains("\"all_monsters_fold\": true"));
        assert!(json.contains("\"egraph_folds\": 1"));
        assert!(json.contains("\"cegis_total_wall_ms_egraph\": 10.000"));
        // Balanced braces → structurally sound JSON for this fixed writer.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
