//! Shared experiment driver for the `exp_*` binaries.
//!
//! Every paper table/figure is regenerated from the same sweep: run Lakeroad and the
//! two modelled baselines over the §5.1 microbenchmark suites, record outcome,
//! timing, and resources per run, then print each artifact (Figure 6 top/bottom,
//! Figure 7, the resource-reduction and solver-portfolio paragraphs, Table 1, and
//! the §5.2 extensibility comparison).

pub mod aig;
pub mod cegis;
pub mod daemon;
pub mod egraph;
pub mod fuzz;
pub mod gate;
pub mod obs;
pub mod sat;
pub mod serve;
pub mod trace;

use std::collections::HashMap;
use std::time::Duration;

use lakeroad::report::{proportion_bar, runtime_histogram, summarize_timing, RunClass, Tally};
use lakeroad::suite::{full_suite, suite_for, Microbenchmark};
use lakeroad::{MapConfig, MapOutcome, Template};
use lr_arch::{ArchName, Architecture};
use lr_baselines::{estimate, BaselineTool};
use lr_serve::{run_batch, BatchJob, BatchOptions, JobResult, TemplateChoice};

/// How much of the paper-scale suite to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few benchmarks per architecture (CI-friendly; seconds to a minute).
    Quick,
    /// All shapes and stages at one bitwidth (minutes).
    Smoke,
    /// The full paper-scale suites (1320 + 396 + 66 benchmarks; hours).
    Full,
}

impl Scale {
    /// Parses `--quick` / `--smoke` / `--full` from argv; defaults to quick.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else if args.iter().any(|a| a == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Quick
        }
    }

    /// Parses `--jobs <N>` from argv: the scheduler worker count for the sweep
    /// binaries. Defaults to the machine's available parallelism. Per-job wall
    /// times are measured under whatever CPU contention the worker count
    /// creates, so pass `--jobs 1` when regenerating the paper's *timing*
    /// figures on a busy machine. Verdicts and resources are
    /// worker-count-independent for jobs that finish within their budget
    /// (pinned by the determinism tests); a job whose CPU need is close to its
    /// wall-clock budget can flip to a timeout under contention — another
    /// reason `--jobs 1` is the right mode for paper-faithful sweeps.
    pub fn workers_from_args() -> usize {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// The benchmark list for one architecture at this scale.
    pub fn suite(self, arch: ArchName) -> Vec<Microbenchmark> {
        match self {
            Scale::Full => full_suite(arch),
            Scale::Smoke => suite_for(arch, [8u32].into_iter()),
            Scale::Quick => {
                // A stratified sample: every 7th benchmark of the smoke suite.
                suite_for(arch, [8u32].into_iter()).into_iter().step_by(7).collect()
            }
        }
    }

    /// Per-benchmark synthesis timeout (the paper uses 120 s / 40 s / 20 s at full
    /// scale).
    pub fn timeout(self, arch: ArchName) -> Duration {
        let full = match arch {
            ArchName::XilinxUltraScalePlus => 120,
            ArchName::LatticeEcp5 => 40,
            _ => 20,
        };
        match self {
            Scale::Full => Duration::from_secs(full),
            Scale::Smoke => Duration::from_secs(30),
            Scale::Quick => Duration::from_secs(15),
        }
    }
}

/// One Lakeroad run's record.
#[derive(Debug, Clone)]
pub struct LakeroadRun {
    /// The benchmark name.
    pub benchmark: String,
    /// Outcome classification.
    pub class: RunClass,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
    /// Winning portfolio member, if the run finished.
    pub winner: Option<String>,
    /// Resources of the mapped design (successful runs only).
    pub resources: Option<lakeroad::Resources>,
}

/// All data collected for one architecture.
#[derive(Debug, Clone, Default)]
pub struct ArchResults {
    /// Lakeroad per-run records.
    pub lakeroad_runs: Vec<LakeroadRun>,
    /// Outcome tally per tool ("lakeroad", "sota", "yosys").
    pub tallies: HashMap<String, Tally>,
    /// Lakeroad run times.
    pub lakeroad_times: Vec<Duration>,
    /// Baseline resources per tool, one entry per benchmark.
    pub baseline_resources: HashMap<String, Vec<lr_baselines::BaselineResources>>,
    /// Lakeroad resources for benchmarks where mapping succeeded.
    pub lakeroad_resources: Vec<lakeroad::Resources>,
    /// Portfolio win counts by solver name.
    pub portfolio_wins: HashMap<String, usize>,
}

/// Runs the completeness sweep for one architecture, with the worker count from
/// the command line (see [`Scale::workers_from_args`]).
pub fn run_architecture(arch: &Architecture, scale: Scale) -> ArchResults {
    run_architecture_with(arch, scale, Scale::workers_from_args())
}

/// [`run_architecture`] with an explicit worker count: the sweep's independent
/// mapping jobs run concurrently on the `lr_serve` work-stealing scheduler,
/// and the records fold back in submission order, so tallies and resource
/// tables are identical at any worker count.
pub fn run_architecture_with(arch: &Architecture, scale: Scale, workers: usize) -> ArchResults {
    let mut results = ArchResults::default();
    let suite = scale.suite(arch.name());
    let config = MapConfig { timeout: scale.timeout(arch.name()), ..MapConfig::default() };
    // No synthesis cache here: this sweep *measures* synthesis (Figure 6/7),
    // and the suite's signed/unsigned twins build identical specs that a cache
    // would collapse into one run. `exp_serve` owns the cached workload.
    let jobs: Vec<BatchJob> = suite
        .iter()
        .map(|bench| {
            BatchJob::new(
                bench.name.clone(),
                bench.build(),
                arch.clone(),
                TemplateChoice::Named(Template::Dsp),
            )
        })
        .collect();
    let run = run_batch(&jobs, &BatchOptions::new(workers, config));

    for (bench, record) in suite.iter().zip(&run.records) {
        let class = match &record.result {
            JobResult::Finished(outcome) => {
                let elapsed = outcome.elapsed();
                results.lakeroad_times.push(elapsed);
                let (class, winner, resources) = match outcome {
                    MapOutcome::Success(m) => {
                        let class = if m.resources.is_single_dsp() {
                            RunClass::Success
                        } else {
                            RunClass::Fail
                        };
                        results.lakeroad_resources.push(m.resources);
                        (class, m.winning_solver.clone(), Some(m.resources))
                    }
                    MapOutcome::Unsat { winning_solver, .. } => {
                        (RunClass::Unsat, winning_solver.clone(), None)
                    }
                    MapOutcome::Timeout { .. } => (RunClass::Timeout, None, None),
                };
                if let Some(winner) = &winner {
                    *results.portfolio_wins.entry(winner.clone()).or_default() += 1;
                }
                results.lakeroad_runs.push(LakeroadRun {
                    benchmark: bench.name.clone(),
                    class,
                    elapsed,
                    winner,
                    resources,
                });
                class
            }
            // Unposeable jobs keep the pre-scheduler classification; expiry and
            // cancellation cannot occur (no deadlines, nobody cancels).
            JobResult::Error(_) | JobResult::DeadlineExpired | JobResult::Cancelled => {
                RunClass::Timeout
            }
        };
        results.tallies.entry("lakeroad".into()).or_default().record(class);
    }

    // Baselines (closed-form estimates; sequential is already instant).
    for bench in &suite {
        let spec = bench.build();
        for (key, tool) in [("sota", BaselineTool::SotaLike), ("yosys", BaselineTool::YosysLike)] {
            let res = estimate(tool, arch.name(), &spec);
            let class = if res.is_single_dsp() { RunClass::Success } else { RunClass::Fail };
            results.tallies.entry(key.into()).or_default().record(class);
            results.baseline_resources.entry(key.into()).or_default().push(res);
        }
    }
    results
}

/// Prints the Figure 6 (top) completeness bars and the Figure 6 (bottom) timing
/// table for one architecture.
pub fn print_completeness(arch: &Architecture, results: &ArchResults) {
    println!("\n== {} ({} microbenchmarks) ==", arch.name(), results.lakeroad_runs.len());
    println!("-- Figure 6 (top): proportion mapped to a single DSP --");
    for (label, key) in
        [("Lakeroad", "lakeroad"), ("SOTA (modelled)", "sota"), ("Yosys (modelled)", "yosys")]
    {
        if let Some(tally) = results.tallies.get(key) {
            println!(
                "  {label:18} {} {:5.1}%  (success {} / fail {} / unsat {} / timeout {})",
                proportion_bar(tally.success_rate(), 30),
                100.0 * tally.success_rate(),
                tally.success,
                tally.fail,
                tally.unsat,
                tally.timeout,
            );
        }
    }
    println!("-- Figure 6 (bottom): Lakeroad mapping time --");
    if let Some(t) = summarize_timing(&results.lakeroad_times) {
        println!("  median {:.2} s   min {:.2} s   max {:.2} s", t.median_s, t.min_s, t.max_s);
    }
}

/// Prints the Figure 7 runtime histogram for one architecture.
pub fn print_histogram(arch: &Architecture, results: &ArchResults, timeout: Duration) {
    println!("\n-- Figure 7: Lakeroad synthesis runtime histogram, {} --", arch.name());
    let h = runtime_histogram(&results.lakeroad_times);
    print!("{}", h.render("ms"));
    if let (Some(p50), Some(p99)) = (h.p50(), h.p99()) {
        println!("  p50 <= {p50} ms   p99 <= {p99} ms");
    }
    println!("  (timeout threshold: {:.0} s)", timeout.as_secs_f64());
}

/// Prints the §5.1 resource-reduction comparison for one architecture.
pub fn print_resources(arch: &Architecture, results: &ArchResults) {
    println!("\n-- Resource reduction vs. baselines, {} --", arch.name());
    let n = results.lakeroad_runs.len().max(1) as f64;
    let lr_le: f64 =
        results.lakeroad_resources.iter().map(|r| r.logic_elements as f64).sum::<f64>() / n;
    let lr_reg: f64 =
        results.lakeroad_resources.iter().map(|r| r.registers as f64).sum::<f64>() / n;
    for (label, key) in [("SOTA (modelled)", "sota"), ("Yosys (modelled)", "yosys")] {
        if let Some(rs) = results.baseline_resources.get(key) {
            let le: f64 = rs.iter().map(|r| r.logic_elements as f64).sum::<f64>() / n;
            let reg: f64 = rs.iter().map(|r| r.registers as f64).sum::<f64>() / n;
            println!(
                "  vs {label:18} Lakeroad saves {:6.1} LEs and {:6.1} registers per microbenchmark",
                le - lr_le,
                reg - lr_reg
            );
        }
    }
}

/// Prints the solver-portfolio win counts (§5.1's Bitwuzla/STP/Yices2/cvc5 paragraph).
pub fn print_portfolio(all: &[(ArchName, ArchResults)]) {
    println!("\n-- Solver portfolio: which member finished first --");
    let mut totals: HashMap<String, usize> = HashMap::new();
    for (_, results) in all {
        for (name, count) in &results.portfolio_wins {
            *totals.entry(name.clone()).or_default() += count;
        }
    }
    let mut rows: Vec<_> = totals.into_iter().collect();
    rows.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    for (name, count) in rows {
        println!("  {name:12} first to finish for {count} runs");
    }
}

/// Prints Table 1: primitives imported from (re-implemented) vendor models.
pub fn print_primitives_table() {
    println!("\n-- Table 1: FPGA primitives imported from primitive models --");
    println!("  {:22} {:34} {:>6}", "Architecture", "Primitive", "SLoC");
    for model in lr_hdl::builtin_models() {
        println!(
            "  {:22} {:34} {:>6}",
            model.architecture,
            model.name,
            lr_hdl::count_sloc(model.source)
        );
    }
    println!(
        "  {:22} {:34} {:>6}",
        "Xilinx UltraScale+",
        "DSP48E2 (programmatic)",
        lr_arch::primitives::DSP48E2_MODEL_SLOC
    );
    println!(
        "  {:22} {:34} {:>6}",
        "Lattice ECP5",
        "MULT18X18C+ALU54A (programmatic)",
        lr_arch::primitives::ECP5_DSP_MODEL_SLOC
    );
}

/// Prints the §5.2 extensibility comparison (architecture-description sizes).
pub fn print_extensibility() {
    println!("\n-- Extensibility: architecture description sizes (§5.2) --");
    println!("  {:22} {:>12} {:>12}", "Architecture", "ours (SLoC)", "paper (SLoC)");
    let paper = [
        (ArchName::Sofa, 20),
        (ArchName::IntelCyclone10Lp, 178),
        (ArchName::XilinxUltraScalePlus, 185),
        (ArchName::LatticeEcp5, 240),
    ];
    for (name, paper_sloc) in paper {
        let arch = Architecture::load(name);
        println!("  {:22} {:>12} {:>12}", name.to_string(), arch.description_sloc(), paper_sloc);
    }
    println!(
        "  (comparison point from the paper: Yosys's UltraScale+ DSP mapping spans ~1300 lines\n   across a dozen files; proprietary tools span millions of lines of C.)"
    );
}

/// Runs the full sweep at a scale and returns per-architecture results.
pub fn run_all(scale: Scale) -> Vec<(ArchName, ArchResults)> {
    Architecture::with_dsps()
        .into_iter()
        .map(|arch| {
            let results = run_architecture(&arch, scale);
            (arch.name(), results)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_nested_suite_sizes() {
        let quick = Scale::Quick.suite(ArchName::LatticeEcp5).len();
        let smoke = Scale::Smoke.suite(ArchName::LatticeEcp5).len();
        let full = Scale::Full.suite(ArchName::LatticeEcp5).len();
        assert!(quick < smoke && smoke < full);
        assert_eq!(full, 396);
    }

    #[test]
    fn timeouts_follow_the_paper_at_full_scale() {
        assert_eq!(Scale::Full.timeout(ArchName::XilinxUltraScalePlus), Duration::from_secs(120));
        assert_eq!(Scale::Full.timeout(ArchName::LatticeEcp5), Duration::from_secs(40));
        assert_eq!(Scale::Full.timeout(ArchName::IntelCyclone10Lp), Duration::from_secs(20));
    }

    #[test]
    fn quick_sweep_on_intel_produces_tallies() {
        let arch = Architecture::intel_cyclone10lp();
        let results = run_architecture(&arch, Scale::Quick);
        assert!(results.tallies["lakeroad"].total() > 0);
        assert_eq!(results.tallies["lakeroad"].total(), results.tallies["sota"].total());
        // Yosys (modelled) never maps the Intel multiplier.
        assert_eq!(results.tallies["yosys"].success, 0);
    }
}
