//! The deterministic bench-regression gate.
//!
//! CI regenerates the `BENCH_*.json` records on every run; this module compares
//! them against the committed baselines on **deterministic counters only** —
//! conflicts, propagations, iteration counts, cache hit rates, fold counts,
//! verdict tallies. Wall-clock numbers are never compared: they depend on the
//! machine, and a gate that flakes with the weather teaches people to ignore it.
//!
//! The counters it does compare are reproducible bit-for-bit because the sweeps
//! that emit them run a single solver configuration on a single thread with fixed
//! seeds. A small relative tolerance ([`TOLERANCE`]) still applies so that an
//! intentional, reviewed behaviour change only trips the gate when it actually
//! regresses search work; improvements always pass (and should be followed by a
//! baseline refresh).
//!
//! The JSON reader is a deliberately tiny recursive-descent parser — the bench
//! records are written by this crate without any serde dependency, and read back
//! the same way.

use std::collections::BTreeMap;
use std::path::Path;

/// Relative headroom a counter may grow by before the gate fails (plus a small
/// absolute slack for near-zero baselines).
pub const TOLERANCE: f64 = 0.10;

/// Absolute slack added on top of the relative tolerance.
pub const ABSOLUTE_SLACK: f64 = 100.0;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (just enough for the `BENCH_*.json` records).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the bench records stay well within `f64` precision).
    Num(f64),
    /// A string (no escape sequences beyond `\"`, `\\`, `\/`, `\n`, `\t` needed).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order irrelevant for the gate).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a byte-offset description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up a path of object keys, e.g. `get(&["cache", "hits"])`.
    pub fn get(&self, path: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for key in path {
            match cur {
                Json::Obj(map) => cur = map.get(*key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            // Accumulate raw bytes and validate as UTF-8 once, so multi-byte
            // sequences survive intact.
            let mut out: Vec<u8> = Vec::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return String::from_utf8(out)
                            .map(Json::Str)
                            .map_err(|_| "invalid UTF-8 in string".to_string());
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push(b'"'),
                            Some(b'\\') => out.push(b'\\'),
                            Some(b'/') => out.push(b'/'),
                            Some(b'n') => out.push(b'\n'),
                            Some(b't') => out.push(b'\t'),
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        out.push(c);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("malformed number at byte {start}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Gate rules
// ---------------------------------------------------------------------------

/// `fresh` may not exceed `baseline` by more than the tolerance.
fn check_counter(failures: &mut Vec<String>, file: &str, label: &str, baseline: f64, fresh: f64) {
    let limit = baseline * (1.0 + TOLERANCE) + ABSOLUTE_SLACK;
    if fresh > limit {
        failures.push(format!(
            "{file}: {label} regressed: {fresh:.0} exceeds baseline {baseline:.0} \
             (limit {limit:.0})"
        ));
    }
}

fn scales_match(failures: &mut Vec<String>, file: &str, baseline: &Json, fresh: &Json) -> bool {
    let b = baseline.get(&["scale"]).and_then(Json::as_str);
    let f = fresh.get(&["scale"]).and_then(Json::as_str);
    if b != f {
        failures.push(format!("{file}: scale mismatch (baseline {b:?}, fresh {f:?})"));
        return false;
    }
    true
}

/// Sums a numeric field over the entries of `array` that `select` accepts.
fn sum_field(doc: &Json, array: &str, field: &str, select: impl Fn(&Json) -> bool) -> f64 {
    doc.get(&[array])
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter(|e| select(e))
                .filter_map(|e| e.get(&[field]).and_then(Json::as_f64))
                .sum()
        })
        .unwrap_or(0.0)
}

/// Tallies the `verdict` strings of the entries `select` accepts.
fn verdict_tally(
    doc: &Json,
    array: &str,
    select: impl Fn(&Json) -> bool,
) -> BTreeMap<String, usize> {
    let mut tally = BTreeMap::new();
    if let Some(items) = doc.get(&[array]).and_then(Json::as_arr) {
        for item in items.iter().filter(|e| select(e)) {
            if let Some(v) = item.get(&["verdict"]).and_then(Json::as_str) {
                *tally.entry(v.to_string()).or_insert(0) += 1;
            }
        }
    }
    tally
}

fn check_cegis(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_cegis.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    for (mode, label) in [(true, "incremental"), (false, "from-scratch")] {
        let select = |e: &Json| e.get(&["incremental"]).and_then(Json::as_bool) == Some(mode);
        for field in ["conflicts", "iterations"] {
            check_counter(
                failures,
                FILE,
                &format!("{label} total {field}"),
                sum_field(baseline, "benchmarks", field, select),
                sum_field(fresh, "benchmarks", field, select),
            );
        }
        let (b, f) = (
            verdict_tally(baseline, "benchmarks", select),
            verdict_tally(fresh, "benchmarks", select),
        );
        if b != f {
            failures.push(format!(
                "{FILE}: {label} verdict tally changed: baseline {b:?}, fresh {f:?}"
            ));
        }
    }
}

fn check_egraph(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_egraph.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    if fresh.get(&["all_monsters_fold"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!("{FILE}: a monster disequality no longer folds"));
    }
    let select = |e: &Json| e.get(&["egraph"]).and_then(Json::as_bool) == Some(true);
    let baseline_folds = sum_field(baseline, "cegis", "egraph_folds", select);
    let fresh_folds = sum_field(fresh, "cegis", "egraph_folds", select);
    if fresh_folds < baseline_folds {
        failures.push(format!(
            "{FILE}: egraph fold count regressed: {fresh_folds:.0} below baseline \
             {baseline_folds:.0} (queries now falling through to SAT)"
        ));
    }
}

fn check_serve(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_serve.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    if fresh.get(&["gates_pass"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!("{FILE}: the serving experiment's own gates failed"));
    }
    let baseline_rate = baseline.get(&["warm_hit_rate"]).and_then(Json::as_f64).unwrap_or(0.0);
    let fresh_rate = fresh.get(&["warm_hit_rate"]).and_then(Json::as_f64).unwrap_or(0.0);
    if fresh_rate < baseline_rate {
        failures.push(format!(
            "{FILE}: warm cache hit rate regressed: {fresh_rate} below baseline {baseline_rate}"
        ));
    }
}

fn check_sat(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_sat.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    if fresh.get(&["gates_pass"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!(
            "{FILE}: modern-vs-legacy gates failed (strictly more work or verdict drift)"
        ));
    }
    for field in ["total_conflicts_modern", "total_propagations_modern"] {
        let b = baseline.get(&[field]).and_then(Json::as_f64).unwrap_or(0.0);
        let f = fresh.get(&[field]).and_then(Json::as_f64).unwrap_or(f64::MAX);
        check_counter(failures, FILE, field, b, f);
    }
}

fn check_daemon(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_daemon.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    if fresh.get(&["gates_pass"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!("{FILE}: the daemon experiment's own gates failed"));
    }
    // Hard invariants, not tolerances: a graceful drain loses nothing, and the
    // workload is sized inside the admission bound.
    for field in ["lost", "rejected"] {
        let f = fresh.get(&[field]).and_then(Json::as_f64).unwrap_or(f64::MAX);
        if f != 0.0 {
            failures.push(format!("{FILE}: {field} is {f:.0}, expected exactly 0"));
        }
    }
    // Deterministic accounting: the request and warm-hit counts depend only on
    // the scale's client/request shape, never on timing.
    for field in ["accepted", "completed", "warm_served", "warm_hits", "cold_misses"] {
        let b = baseline.get(&[field]).and_then(Json::as_f64).unwrap_or(0.0);
        let f = fresh.get(&[field]).and_then(Json::as_f64).unwrap_or(f64::MAX);
        if f != b {
            failures.push(format!("{FILE}: {field} changed: {f:.0} vs baseline {b:.0}"));
        }
    }
}

fn check_fuzz(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_fuzz.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    if fresh.get(&["gates_pass"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!("{FILE}: the fuzz experiment's own gates failed"));
    }
    // Zero tolerance: a differential mismatch is a frontend/backend soundness
    // bug, never an acceptable drift.
    let mismatches = fresh.get(&["mismatch_count"]).and_then(Json::as_f64).unwrap_or(f64::MAX);
    if mismatches != 0.0 {
        failures.push(format!("{FILE}: mismatch_count is {mismatches:.0}, expected exactly 0"));
    }
    // Deterministic counters: the generator and oracle are pure functions of
    // the seed range, so these must reproduce exactly. Mapping verdict tallies
    // (success/unsat/timeout) are timing-dependent and deliberately ungated.
    for field in ["seeds_run", "parse_ok", "elaborate_ok", "roundtrip_ok"] {
        let b = baseline.get(&[field]).and_then(Json::as_f64).unwrap_or(0.0);
        let f = fresh.get(&[field]).and_then(Json::as_f64).unwrap_or(f64::MAX);
        if f != b {
            failures.push(format!("{FILE}: {field} changed: {f:.0} vs baseline {b:.0}"));
        }
    }
}

fn check_trace(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_trace.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    if fresh.get(&["gates_pass"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!(
            "{FILE}: the tracing experiment's own gates failed (counter drift or missing spans)"
        ));
    }
    // Zero tolerance: tracing is pure observation. A single counter that moved
    // between the untraced and traced passes means a span steered the search.
    let mismatches = fresh.get(&["counter_mismatches"]).and_then(Json::as_f64).unwrap_or(f64::MAX);
    if mismatches != 0.0 {
        failures.push(format!("{FILE}: counter_mismatches is {mismatches:.0}, expected exactly 0"));
    }
    // The traced pass must actually record spans — zero events means the
    // instrumentation rotted out of the hot path.
    let events = fresh.get(&["traced_events"]).and_then(Json::as_f64).unwrap_or(0.0);
    if events <= 0.0 {
        failures.push(format!("{FILE}: traced pass recorded no span events"));
    }
    // The search-work counters compare against the baseline with the usual
    // tolerance; overhead_ratio and wall times are deliberately ungated.
    for field in ["conflicts", "iterations"] {
        check_counter(
            failures,
            FILE,
            &format!("total {field}"),
            sum_field(baseline, "benchmarks", field, |_| true),
            sum_field(fresh, "benchmarks", field, |_| true),
        );
    }
}

fn check_obs(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_obs.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    if fresh.get(&["gates_pass"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!(
            "{FILE}: the observability experiment's own gates failed (forensics perturbed the \
             search, bundles missing, or malformed metrics)"
        ));
    }
    // Zero tolerance: the flight recorder is pure observation, the OpenMetrics
    // exposition must always parse, and a graceful drain loses nothing.
    for field in ["counter_mismatches", "metrics_errors", "lost"] {
        let f = fresh.get(&[field]).and_then(Json::as_f64).unwrap_or(f64::MAX);
        if f != 0.0 {
            failures.push(format!("{FILE}: {field} is {f:.0}, expected exactly 0"));
        }
    }
    // Deterministic accounting: the workload shape, the bundle-per-request
    // contract of `--slow-ms 0`, and per-id retrieval depend only on the
    // scale, never on timing. Wall clocks are deliberately ungated.
    for field in ["accepted", "completed", "bundles_written", "records_retrieved"] {
        let b = baseline.get(&[field]).and_then(Json::as_f64).unwrap_or(0.0);
        let f = fresh.get(&[field]).and_then(Json::as_f64).unwrap_or(f64::MAX);
        if f != b {
            failures.push(format!("{FILE}: {field} changed: {f:.0} vs baseline {b:.0}"));
        }
    }
}

fn check_aig(failures: &mut Vec<String>, baseline: &Json, fresh: &Json) {
    const FILE: &str = "BENCH_aig.json";
    if !scales_match(failures, FILE, baseline, fresh) {
        return;
    }
    if fresh.get(&["gates_pass"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!(
            "{FILE}: the structural-frontend experiment's own gates failed (a stitch \
             disagreed with its netlist, a warm cone missed the cache, or a cone \
             outgrew the LUT)"
        ));
    }
    // Zero tolerance: a stitched design that disagrees with its source netlist
    // is a soundness bug, never an acceptable drift — and every warm cone must
    // be served from the cache.
    let mismatches = fresh.get(&["total_mismatches"]).and_then(Json::as_f64).unwrap_or(f64::MAX);
    if mismatches != 0.0 {
        failures.push(format!("{FILE}: total_mismatches is {mismatches:.0}, expected exactly 0"));
    }
    if fresh.get(&["warm_all_hits"]).and_then(Json::as_bool) != Some(true) {
        failures.push(format!("{FILE}: a warm cone was not served from the cache"));
    }
    // Deterministic accounting: the fixtures are committed and the partitioner
    // is a pure function of the AIG, so the cone/coverage counters must
    // reproduce exactly. Wall clocks and cold cache hits (timing-dependent
    // under parallel workers) are deliberately ungated.
    for field in ["total_ands", "largest_fixture_ands", "total_cones", "unique_cones"] {
        let b = baseline.get(&[field]).and_then(Json::as_f64).unwrap_or(0.0);
        let f = fresh.get(&[field]).and_then(Json::as_f64).unwrap_or(f64::MAX);
        if f != b {
            failures.push(format!("{FILE}: {field} changed: {f:.0} vs baseline {b:.0}"));
        }
    }
    for field in ["covered_ands", "max_leaves", "logic_elements", "registers"] {
        let b = sum_field(baseline, "fixtures", field, |_| true);
        let f = sum_field(fresh, "fixtures", field, |_| true);
        if f != b {
            failures.push(format!(
                "{FILE}: per-fixture {field} total changed: {f:.0} vs baseline {b:.0}"
            ));
        }
    }
}

/// One file's comparison rule: (failures, baseline document, fresh document).
pub type GateRule = fn(&mut Vec<String>, &Json, &Json);

/// The `BENCH_*.json` files the gate knows how to compare, with their rules.
pub const GATED_FILES: [(&str, GateRule); 9] = [
    ("BENCH_cegis.json", check_cegis),
    ("BENCH_egraph.json", check_egraph),
    ("BENCH_serve.json", check_serve),
    ("BENCH_sat.json", check_sat),
    ("BENCH_daemon.json", check_daemon),
    ("BENCH_fuzz.json", check_fuzz),
    ("BENCH_trace.json", check_trace),
    ("BENCH_obs.json", check_obs),
    ("BENCH_aig.json", check_aig),
];

/// Compares every known bench record present in `baseline_dir` against its
/// freshly generated counterpart in `fresh_dir`.
///
/// A record present in the baseline directory but missing from the fresh one is
/// a failure (the sweep that emits it did not run); a record absent from the
/// baseline directory is skipped (no baseline yet — commit one to arm the gate).
///
/// # Errors
/// Returns every failure, one description per line.
pub fn run_gate(baseline_dir: &Path, fresh_dir: &Path) -> Result<Vec<String>, Vec<String>> {
    let mut failures = Vec::new();
    let mut checked = Vec::new();
    for (file, check) in GATED_FILES {
        let baseline_path = baseline_dir.join(file);
        if !baseline_path.exists() {
            continue;
        }
        let fresh_path = fresh_dir.join(file);
        let baseline = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Json::parse(&t))
        {
            Ok(doc) => doc,
            Err(e) => {
                failures.push(format!("{file}: unreadable baseline: {e}"));
                continue;
            }
        };
        let fresh = match std::fs::read_to_string(&fresh_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Json::parse(&t))
        {
            Ok(doc) => doc,
            Err(e) => {
                failures.push(format!("{file}: fresh record missing or unreadable: {e}"));
                continue;
            }
        };
        check(&mut failures, &baseline, &fresh);
        checked.push(file.to_string());
    }
    if failures.is_empty() {
        Ok(checked)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_bench_shapes() {
        let doc = Json::parse(
            "{\n  \"scale\": \"Quick\",\n  \"speedup\": 1.512,\n  \"ok\": true,\n  \
             \"items\": [{\"n\": 1}, {\"n\": -2.5e1}],\n  \"nothing\": null\n}",
        )
        .unwrap();
        assert_eq!(doc.get(&["scale"]).and_then(Json::as_str), Some("Quick"));
        assert_eq!(doc.get(&["speedup"]).and_then(Json::as_f64), Some(1.512));
        assert_eq!(doc.get(&["ok"]).and_then(Json::as_bool), Some(true));
        let items = doc.get(&["items"]).and_then(Json::as_arr).unwrap();
        assert_eq!(items[1].get(&["n"]).and_then(Json::as_f64), Some(-25.0));
        assert_eq!(doc.get(&["nothing"]), Some(&Json::Null));
    }

    #[test]
    fn parser_preserves_multi_byte_utf8_strings() {
        let doc = Json::parse("{\"arch\": \"Xilinx UltraScale+ → §5.1\"}").unwrap();
        assert_eq!(doc.get(&["arch"]).and_then(Json::as_str), Some("Xilinx UltraScale+ → §5.1"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn the_committed_baselines_parse() {
        // The real records this gate will read in CI must stay parseable by the
        // mini parser.
        for file in [
            "BENCH_cegis.json",
            "BENCH_egraph.json",
            "BENCH_serve.json",
            "BENCH_daemon.json",
            "BENCH_fuzz.json",
            "BENCH_trace.json",
            "BENCH_obs.json",
            "BENCH_aig.json",
        ] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(file);
            if let Ok(text) = std::fs::read_to_string(&path) {
                Json::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
            }
        }
    }

    fn sat_doc(conflicts: u64, propagations: u64, gates_pass: bool) -> String {
        format!(
            "{{\"scale\": \"Quick\", \"total_conflicts_modern\": {conflicts}, \
             \"total_propagations_modern\": {propagations}, \"gates_pass\": {gates_pass}, \
             \"benchmarks\": []}}"
        )
    }

    #[test]
    fn sat_rule_fails_on_conflict_regression_and_passes_within_tolerance() {
        let baseline = Json::parse(&sat_doc(10_000, 1_000_000, true)).unwrap();
        // +5% conflicts: within tolerance.
        let ok = Json::parse(&sat_doc(10_500, 1_000_000, true)).unwrap();
        let mut failures = Vec::new();
        check_sat(&mut failures, &baseline, &ok);
        assert!(failures.is_empty(), "{failures:?}");
        // +50% conflicts: regression.
        let bad = Json::parse(&sat_doc(15_000, 1_000_000, true)).unwrap();
        let mut failures = Vec::new();
        check_sat(&mut failures, &baseline, &bad);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("total_conflicts_modern"));
        // gates_pass=false always fails.
        let bad = Json::parse(&sat_doc(10_000, 1_000_000, false)).unwrap();
        let mut failures = Vec::new();
        check_sat(&mut failures, &baseline, &bad);
        assert!(!failures.is_empty());
    }

    #[test]
    fn cegis_rule_compares_per_mode_sums_and_verdicts() {
        let doc = |conflicts: u64, verdict: &str| {
            Json::parse(&format!(
                "{{\"scale\": \"Quick\", \"benchmarks\": [\
                 {{\"incremental\": true, \"conflicts\": {conflicts}, \"iterations\": 2, \
                 \"verdict\": \"{verdict}\"}}, \
                 {{\"incremental\": false, \"conflicts\": 500, \"iterations\": 2, \
                 \"verdict\": \"success\"}}]}}"
            ))
            .unwrap()
        };
        let baseline = doc(1000, "success");
        let mut failures = Vec::new();
        check_cegis(&mut failures, &baseline, &doc(1050, "success"));
        assert!(failures.is_empty(), "{failures:?}");
        let mut failures = Vec::new();
        check_cegis(&mut failures, &baseline, &doc(5000, "success"));
        assert!(failures.iter().any(|f| f.contains("conflicts")));
        let mut failures = Vec::new();
        check_cegis(&mut failures, &baseline, &doc(1000, "timeout"));
        assert!(failures.iter().any(|f| f.contains("verdict tally")));
    }

    fn daemon_doc(lost: u64, warm_served: u64, gates_pass: bool) -> Json {
        Json::parse(&format!(
            "{{\"scale\": \"Quick\", \"accepted\": 30, \"completed\": 30, \"rejected\": 0, \
             \"lost\": {lost}, \"warm_served\": {warm_served}, \"warm_hits\": {warm_served}, \
             \"cold_misses\": 3, \"warm_p99_ms\": 90.0, \"gates_pass\": {gates_pass}}}"
        ))
        .unwrap()
    }

    #[test]
    fn daemon_rule_pins_accounting_exactly_and_ignores_latency() {
        let baseline = daemon_doc(0, 24, true);
        // Identical counters pass, no matter how the (ungated) latency moved.
        let mut failures = Vec::new();
        check_daemon(&mut failures, &baseline, &daemon_doc(0, 24, true));
        assert!(failures.is_empty(), "{failures:?}");

        // One lost job is an absolute failure, not a tolerance question.
        let mut failures = Vec::new();
        check_daemon(&mut failures, &baseline, &daemon_doc(1, 24, true));
        assert!(failures.iter().any(|f| f.contains("lost")));

        // A warm verdict that fell out of the cache shifts the deterministic
        // counters and fails exactly.
        let mut failures = Vec::new();
        check_daemon(&mut failures, &baseline, &daemon_doc(0, 23, true));
        assert!(failures.iter().any(|f| f.contains("warm_served")));

        let mut failures = Vec::new();
        check_daemon(&mut failures, &baseline, &daemon_doc(0, 24, false));
        assert!(failures.iter().any(|f| f.contains("own gates")));
    }

    fn fuzz_doc(mismatches: u64, roundtrip_ok: u64, gates_pass: bool) -> Json {
        Json::parse(&format!(
            "{{\"scale\": \"Quick\", \"seeds_run\": 200, \"parse_ok\": 200, \
             \"elaborate_ok\": 200, \"roundtrip_ok\": {roundtrip_ok}, \"map_attempted\": 8, \
             \"map_success\": 2, \"map_unsat\": 3, \"map_timeout\": 3, \"map_agree\": 2, \
             \"mismatch_count\": {mismatches}, \"mismatches\": [], \
             \"gates_pass\": {gates_pass}}}"
        ))
        .unwrap()
    }

    #[test]
    fn fuzz_rule_is_zero_tolerance_on_mismatches_and_ignores_map_tallies() {
        let baseline = fuzz_doc(0, 200, true);
        let mut failures = Vec::new();
        check_fuzz(&mut failures, &baseline, &fuzz_doc(0, 200, true));
        assert!(failures.is_empty(), "{failures:?}");

        // A single mismatch is an absolute failure.
        let mut failures = Vec::new();
        check_fuzz(&mut failures, &baseline, &fuzz_doc(1, 200, true));
        assert!(failures.iter().any(|f| f.contains("mismatch_count")));

        // Deterministic counters must reproduce exactly.
        let mut failures = Vec::new();
        check_fuzz(&mut failures, &baseline, &fuzz_doc(0, 199, true));
        assert!(failures.iter().any(|f| f.contains("roundtrip_ok")));

        // Mapping verdict tallies are timing-dependent and ungated: a fresh
        // record whose success/unsat/timeout split moved still passes.
        let moved = Json::parse(
            "{\"scale\": \"Quick\", \"seeds_run\": 200, \"parse_ok\": 200, \
             \"elaborate_ok\": 200, \"roundtrip_ok\": 200, \"map_attempted\": 8, \
             \"map_success\": 0, \"map_unsat\": 1, \"map_timeout\": 7, \"map_agree\": 0, \
             \"mismatch_count\": 0, \"mismatches\": [], \"gates_pass\": true}",
        )
        .unwrap();
        let mut failures = Vec::new();
        check_fuzz(&mut failures, &baseline, &moved);
        assert!(failures.is_empty(), "map tallies must be ungated: {failures:?}");

        let mut failures = Vec::new();
        check_fuzz(&mut failures, &baseline, &fuzz_doc(0, 200, false));
        assert!(failures.iter().any(|f| f.contains("own gates")));
    }

    fn trace_doc(mismatches: u64, events: u64, conflicts: u64, gates_pass: bool) -> Json {
        Json::parse(&format!(
            "{{\"scale\": \"Quick\", \"untraced_total_ms\": 100.0, \"traced_total_ms\": 103.0, \
             \"overhead_ratio\": 1.03, \"traced_events\": {events}, \"dropped_events\": 0, \
             \"counter_mismatches\": {mismatches}, \"missing_spans\": [], \
             \"gates_pass\": {gates_pass}, \"benchmarks\": [{{\"benchmark\": \"mul_w8_s0\", \
             \"conflicts\": {conflicts}, \"iterations\": 2, \"identical\": true}}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn trace_rule_is_zero_tolerance_on_identity_and_ignores_overhead() {
        let baseline = trace_doc(0, 500, 1000, true);
        let mut failures = Vec::new();
        check_trace(&mut failures, &baseline, &trace_doc(0, 500, 1050, true));
        assert!(failures.is_empty(), "{failures:?}");

        // A single counter mismatch between traced and untraced is absolute.
        let mut failures = Vec::new();
        check_trace(&mut failures, &baseline, &trace_doc(1, 500, 1000, true));
        assert!(failures.iter().any(|f| f.contains("counter_mismatches")));

        // A traced pass with no events means the spans rotted.
        let mut failures = Vec::new();
        check_trace(&mut failures, &baseline, &trace_doc(0, 0, 1000, true));
        assert!(failures.iter().any(|f| f.contains("no span events")));

        // Search-work regressions beyond tolerance still trip the gate.
        let mut failures = Vec::new();
        check_trace(&mut failures, &baseline, &trace_doc(0, 500, 5000, true));
        assert!(failures.iter().any(|f| f.contains("total conflicts")));

        // Overhead ratio and wall times are ungated: a 100x slower traced pass
        // with identical counters passes.
        let mut failures = Vec::new();
        let slow = Json::parse(
            "{\"scale\": \"Quick\", \"untraced_total_ms\": 100.0, \
             \"traced_total_ms\": 10000.0, \"overhead_ratio\": 100.0, \
             \"traced_events\": 500, \"dropped_events\": 0, \"counter_mismatches\": 0, \
             \"missing_spans\": [], \"gates_pass\": true, \"benchmarks\": [{\"benchmark\": \
             \"mul_w8_s0\", \"conflicts\": 1000, \"iterations\": 2, \"identical\": true}]}",
        )
        .unwrap();
        check_trace(&mut failures, &baseline, &slow);
        assert!(failures.is_empty(), "overhead must be ungated: {failures:?}");

        let mut failures = Vec::new();
        check_trace(&mut failures, &baseline, &trace_doc(0, 500, 1000, false));
        assert!(failures.iter().any(|f| f.contains("own gates")));
    }

    fn obs_doc(mismatches: u64, metrics_errors: u64, bundles: u64, gates_pass: bool) -> Json {
        Json::parse(&format!(
            "{{\"scale\": \"Quick\", \"distinct\": 4, \"accepted\": 9, \"completed\": 9, \
             \"lost\": 0, \"counter_mismatches\": {mismatches}, \"bundles_written\": {bundles}, \
             \"bundle_files\": 10, \"records_retrieved\": 4, \
             \"metrics_errors\": {metrics_errors}, \"metrics_lines\": 120, \
             \"off_wall_ms\": 500.0, \"on_wall_ms\": 520.0, \"gates_pass\": {gates_pass}}}"
        ))
        .unwrap()
    }

    #[test]
    fn obs_rule_is_zero_tolerance_on_identity_and_exposition() {
        let baseline = obs_doc(0, 0, 9, true);
        // Identical counters pass, no matter how the (ungated) wall time moved.
        let mut failures = Vec::new();
        check_obs(&mut failures, &baseline, &obs_doc(0, 0, 9, true));
        assert!(failures.is_empty(), "{failures:?}");

        // One deterministic counter perturbed by forensics is absolute.
        let mut failures = Vec::new();
        check_obs(&mut failures, &baseline, &obs_doc(1, 0, 9, true));
        assert!(failures.iter().any(|f| f.contains("counter_mismatches")));

        // A malformed metrics exposition is absolute.
        let mut failures = Vec::new();
        check_obs(&mut failures, &baseline, &obs_doc(0, 2, 9, true));
        assert!(failures.iter().any(|f| f.contains("metrics_errors")));

        // The bundle-per-request contract must reproduce exactly.
        let mut failures = Vec::new();
        check_obs(&mut failures, &baseline, &obs_doc(0, 0, 8, true));
        assert!(failures.iter().any(|f| f.contains("bundles_written")));

        let mut failures = Vec::new();
        check_obs(&mut failures, &baseline, &obs_doc(0, 0, 9, false));
        assert!(failures.iter().any(|f| f.contains("own gates")));
    }

    fn aig_doc(mismatches: u64, cones: u64, warm_all: bool, gates_pass: bool) -> Json {
        Json::parse(&format!(
            "{{\"scale\": \"Quick\", \"total_ands\": 1326, \"largest_fixture_ands\": 1100, \
             \"total_cones\": {cones}, \"unique_cones\": 80, \
             \"total_mismatches\": {mismatches}, \"warm_all_hits\": {warm_all}, \
             \"gates_pass\": {gates_pass}, \"fixtures\": [{{\"name\": \"c17.bench\", \
             \"ands\": 6, \"cones\": 2, \"covered_ands\": 7, \"max_leaves\": 4, \
             \"logic_elements\": 2, \"registers\": 0, \"cold_wall_ms\": 120.0, \
             \"warm_wall_ms\": 4.0}}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn aig_rule_is_zero_tolerance_on_stitch_identity_and_cone_accounting() {
        let baseline = aig_doc(0, 400, true, true);
        // Identical counters pass, no matter how the (ungated) wall time moved.
        let mut failures = Vec::new();
        check_aig(&mut failures, &baseline, &aig_doc(0, 400, true, true));
        assert!(failures.is_empty(), "{failures:?}");

        // A single stitched-verification mismatch is absolute.
        let mut failures = Vec::new();
        check_aig(&mut failures, &baseline, &aig_doc(1, 400, true, true));
        assert!(failures.iter().any(|f| f.contains("total_mismatches")));

        // A warm cone that missed the cache is absolute.
        let mut failures = Vec::new();
        check_aig(&mut failures, &baseline, &aig_doc(0, 400, false, true));
        assert!(failures.iter().any(|f| f.contains("warm cone")));

        // The partitioner is deterministic: cone counts must reproduce exactly.
        let mut failures = Vec::new();
        check_aig(&mut failures, &baseline, &aig_doc(0, 401, true, true));
        assert!(failures.iter().any(|f| f.contains("total_cones")));

        let mut failures = Vec::new();
        check_aig(&mut failures, &baseline, &aig_doc(0, 400, true, false));
        assert!(failures.iter().any(|f| f.contains("own gates")));
    }

    #[test]
    fn scale_mismatch_is_reported_not_compared() {
        let quick = Json::parse(&sat_doc(10, 10, true)).unwrap();
        let full = Json::parse(&sat_doc(10, 10, true).replace("Quick", "Full")).unwrap();
        let mut failures = Vec::new();
        check_sat(&mut failures, &quick, &full);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("scale mismatch"));
    }

    #[test]
    fn wall_clock_fields_are_never_gated() {
        // A fresh record that is 100x slower but otherwise identical passes.
        let baseline = Json::parse(
            "{\"scale\": \"Quick\", \"total_wall_ms_incremental\": 100.0, \
             \"total_wall_ms_from_scratch\": 200.0, \"speedup\": 2.0, \"benchmarks\": []}",
        )
        .unwrap();
        let slow = Json::parse(
            "{\"scale\": \"Quick\", \"total_wall_ms_incremental\": 10000.0, \
             \"total_wall_ms_from_scratch\": 10000.0, \"speedup\": 1.0, \"benchmarks\": []}",
        )
        .unwrap();
        let mut failures = Vec::new();
        check_cegis(&mut failures, &baseline, &slow);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
