//! The SAT-core modernization experiment: run the e2e mapping tier through
//! synthesis twice — once with the modernized solver configuration (LBD-tiered
//! clause database + EMA restarts, the default) and once with the old-style one
//! (activity-only deletion + Luby restarts) — and record the deterministic solver
//! counters (conflicts, propagations, learnt/minimized literals, restarts, glue)
//! per benchmark in a machine-readable `BENCH_sat.json`.
//!
//! Like the CEGIS comparison, this uses a *single* solver configuration per run
//! (no portfolio, no threads), so every counter is reproducible bit-for-bit and
//! usable as a CI regression gate: the modernized configuration must not do more
//! search work than the legacy one on the same tier.

use std::time::Instant;

use lakeroad::suite::Microbenchmark;
use lakeroad::{generate_sketch, pipeline_depth, Template};
use lr_arch::Architecture;
use lr_smt::SolverConfig;
use lr_synth::{synthesize, SynthesisConfig, SynthesisOutcome, SynthesisTask};

use crate::Scale;

/// Where the machine-readable comparison record is written (repo-relative; CI
/// uploads this exact path as an artifact, next to the other `BENCH_*.json`).
pub const REPORT_PATH: &str = "BENCH_sat.json";

/// The modernized configuration under test (the workspace default).
pub fn modern_config() -> SolverConfig {
    SolverConfig { name: "modern".into(), ..SolverConfig::default() }
}

/// The pre-modernization comparison point.
pub fn legacy_config() -> SolverConfig {
    SolverConfig { name: "legacy".into(), ..SolverConfig::legacy() }
}

/// One synthesis run's solver-counter record (one benchmark in one mode).
#[derive(Debug, Clone)]
pub struct SatRun {
    /// Architecture name.
    pub arch: String,
    /// Benchmark name.
    pub benchmark: String,
    /// `"modern"` or `"legacy"`.
    pub mode: &'static str,
    /// `success` / `unsat` / `timeout`.
    pub verdict: &'static str,
    /// Measured wall-clock time (informational; never gated on).
    pub wall_ms: f64,
    /// CEGIS iterations performed.
    pub iterations: usize,
    /// SAT conflicts across all checks of the run.
    pub conflicts: u64,
    /// SAT unit propagations across all checks of the run.
    pub propagations: u64,
    /// SAT restarts across all checks of the run.
    pub restarts: u64,
    /// Literals across stored learnt clauses (post-minimization).
    pub learnt_literals: u64,
    /// Literals removed by recursive clause minimization.
    pub minimized_literals: u64,
    /// Learnt clauses with glue ≤ 2 (the core-quality fraction).
    pub low_glue_clauses: u64,
    /// All learnt clauses stored.
    pub learnt_clauses: u64,
}

/// The full comparison: every benchmark of the tier in both modes.
#[derive(Debug, Clone)]
pub struct SatComparison {
    /// The sweep scale the comparison ran at.
    pub scale: Scale,
    /// Per-run records, modern and legacy interleaved per benchmark.
    pub runs: Vec<SatRun>,
}

impl SatComparison {
    fn total(&self, mode: &str, field: impl Fn(&SatRun) -> u64) -> u64 {
        self.runs.iter().filter(|r| r.mode == mode).map(field).sum()
    }

    /// Total conflicts of one mode.
    pub fn total_conflicts(&self, mode: &str) -> u64 {
        self.total(mode, |r| r.conflicts)
    }

    /// Total propagations of one mode.
    pub fn total_propagations(&self, mode: &str) -> u64 {
        self.total(mode, |r| r.propagations)
    }

    /// Total learnt literals of one mode.
    pub fn total_learnt_literals(&self, mode: &str) -> u64 {
        self.total(mode, |r| r.learnt_literals)
    }

    /// The acceptance gate: the modernized configuration must reduce total
    /// conflicts or total propagations on the tier (and both modes must agree on
    /// every verdict).
    ///
    /// # Errors
    /// Returns a description of every gate that failed.
    pub fn gates(&self) -> Result<(), String> {
        let mut failures = Vec::new();
        if self.runs.is_empty() {
            // An empty comparison must not pass vacuously: it means every
            // benchmark failed to produce a paired measurement.
            failures.push("no paired runs recorded — the sweep measured nothing".to_string());
        }
        let mut i = 0;
        while i + 1 < self.runs.len() {
            let (a, b) = (&self.runs[i], &self.runs[i + 1]);
            if a.benchmark == b.benchmark && a.mode != b.mode && a.verdict != b.verdict {
                failures.push(format!(
                    "verdict drift on {}/{}: modern={} legacy={}",
                    a.arch, a.benchmark, a.verdict, b.verdict
                ));
            }
            i += 2;
        }
        let (mc, lc) = (self.total_conflicts("modern"), self.total_conflicts("legacy"));
        let (mp, lp) = (self.total_propagations("modern"), self.total_propagations("legacy"));
        if mc > lc && mp > lp {
            failures.push(format!(
                "modern config does strictly more work: conflicts {mc} > {lc} and \
                 propagations {mp} > {lp}"
            ));
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }

    /// Renders the comparison as a JSON document (no external dependencies; the
    /// format is stable for CI consumption, like `BENCH_cegis.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        for mode in ["modern", "legacy"] {
            out.push_str(&format!(
                "  \"total_conflicts_{mode}\": {},\n",
                self.total_conflicts(mode)
            ));
            out.push_str(&format!(
                "  \"total_propagations_{mode}\": {},\n",
                self.total_propagations(mode)
            ));
            out.push_str(&format!(
                "  \"total_learnt_literals_{mode}\": {},\n",
                self.total_learnt_literals(mode)
            ));
        }
        out.push_str(&format!(
            "  \"total_minimized_literals_modern\": {},\n",
            self.total("modern", |r| r.minimized_literals)
        ));
        out.push_str(&format!("  \"gates_pass\": {},\n", self.gates().is_ok()));
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"arch\": \"{}\", \"benchmark\": \"{}\", \"mode\": \"{}\", \
                 \"verdict\": \"{}\", \"wall_ms\": {:.3}, \"iterations\": {}, \
                 \"conflicts\": {}, \"propagations\": {}, \"restarts\": {}, \
                 \"learnt_literals\": {}, \"minimized_literals\": {}, \
                 \"low_glue_clauses\": {}, \"learnt_clauses\": {}}}{}\n",
                r.arch,
                r.benchmark,
                r.mode,
                r.verdict,
                r.wall_ms,
                r.iterations,
                r.conflicts,
                r.propagations,
                r.restarts,
                r.learnt_literals,
                r.minimized_literals,
                r.low_glue_clauses,
                r.learnt_clauses,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary table.
    pub fn print_summary(&self) {
        println!(
            "\n-- CDCL modernization: tiered+EMA vs. activity+Luby ({:?} scale) --",
            self.scale
        );
        println!(
            "  {:44} {:>10} {:>10} {:>11} {:>11}",
            "benchmark", "mod cfl", "leg cfl", "mod props", "leg props"
        );
        let mut i = 0;
        while i + 1 < self.runs.len() {
            let (a, b) = (&self.runs[i], &self.runs[i + 1]);
            debug_assert!(a.mode == "modern" && b.mode == "legacy");
            println!(
                "  {:44} {:>10} {:>10} {:>11} {:>11}",
                format!("{}/{}", a.arch, a.benchmark),
                a.conflicts,
                b.conflicts,
                a.propagations,
                b.propagations
            );
            i += 2;
        }
        let minimized = self.total("modern", |r| r.minimized_literals);
        let learnt = self.total_learnt_literals("modern");
        println!(
            "  totals: conflicts {} vs {}, propagations {} vs {} (modern vs legacy)",
            self.total_conflicts("modern"),
            self.total_conflicts("legacy"),
            self.total_propagations("modern"),
            self.total_propagations("legacy"),
        );
        println!(
            "  modern clause quality: {} learnt literals, {} minimized away ({:.1}%), {} restarts",
            learnt,
            minimized,
            if learnt + minimized > 0 {
                100.0 * minimized as f64 / (learnt + minimized) as f64
            } else {
                0.0
            },
            self.total("modern", |r| r.restarts),
        );
    }
}

fn run_one(
    arch: &Architecture,
    bench: &Microbenchmark,
    scale: Scale,
    mode: &'static str,
    solver: SolverConfig,
) -> Option<SatRun> {
    let spec = bench.build();
    let sketch = generate_sketch(Template::Dsp, arch, &spec).ok()?;
    let t = pipeline_depth(&spec);
    let task = SynthesisTask::over_window(&spec, &sketch, t, 2);
    let config = SynthesisConfig {
        solver,
        timeout: Some(scale.timeout(arch.name())),
        ..SynthesisConfig::default()
    };
    let start = Instant::now();
    let outcome = synthesize(&task, &config).ok()?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let (verdict, stats) = match &outcome {
        SynthesisOutcome::Success(s) => ("success", &s.stats),
        SynthesisOutcome::Unsat { stats } => ("unsat", stats),
        SynthesisOutcome::Timeout { stats } => ("timeout", stats),
    };
    Some(SatRun {
        arch: arch.name().to_string(),
        benchmark: bench.name.clone(),
        mode,
        verdict,
        wall_ms,
        iterations: stats.iterations,
        conflicts: stats.conflicts,
        propagations: stats.propagations,
        restarts: stats.restarts,
        learnt_literals: stats.learnt_literals,
        minimized_literals: stats.minimized_literals,
        low_glue_clauses: stats.glue_histogram[0] + stats.glue_histogram[1],
        learnt_clauses: stats.glue_histogram.iter().sum(),
    })
}

/// Runs the comparison over the e2e mapping tier at `scale`: each benchmark once
/// under the modernized solver configuration, once under the old-style one.
pub fn run_sat_comparison(scale: Scale) -> SatComparison {
    let mut runs = Vec::new();
    for arch in Architecture::with_dsps() {
        for bench in scale.suite(arch.name()) {
            let pair: Vec<SatRun> = [("modern", modern_config()), ("legacy", legacy_config())]
                .into_iter()
                .filter_map(|(mode, cfg)| run_one(&arch, &bench, scale, mode, cfg))
                .collect();
            match pair.len() {
                2 => runs.extend(pair),
                0 => {}
                _ => eprintln!(
                    "warning: dropping unpaired sat runs for {}/{} (one mode failed)",
                    arch.name(),
                    bench.name
                ),
            }
        }
    }
    SatComparison { scale, runs }
}

/// Prints the human-readable summary, writes [`REPORT_PATH`], and evaluates the
/// acceptance gates.
///
/// # Errors
/// Returns the gate-failure description when a gate fails.
pub fn report_and_write(comparison: &SatComparison) -> Result<(), String> {
    comparison.print_summary();
    match comparison.write_json(REPORT_PATH) {
        Ok(()) => println!("wrote {REPORT_PATH} ({} runs)", comparison.runs.len()),
        Err(e) => eprintln!("failed to write {REPORT_PATH}: {e}"),
    }
    comparison.gates()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mode: &'static str, benchmark: &str, conflicts: u64, propagations: u64) -> SatRun {
        SatRun {
            arch: "intel_cyclone10lp".into(),
            benchmark: benchmark.into(),
            mode,
            verdict: "success",
            wall_ms: 1.0,
            iterations: 1,
            conflicts,
            propagations,
            restarts: 1,
            learnt_literals: 10,
            minimized_literals: 3,
            low_glue_clauses: 2,
            learnt_clauses: 4,
        }
    }

    #[test]
    fn gates_pass_when_modern_wins_either_axis() {
        let cmp = SatComparison {
            scale: Scale::Quick,
            runs: vec![run("modern", "b", 10, 2000), run("legacy", "b", 20, 1000)],
        };
        assert!(cmp.gates().is_ok(), "fewer conflicts suffices");
        let cmp = SatComparison {
            scale: Scale::Quick,
            runs: vec![run("modern", "b", 30, 500), run("legacy", "b", 20, 1000)],
        };
        assert!(cmp.gates().is_ok(), "fewer propagations suffices");
    }

    #[test]
    fn gates_fail_when_modern_is_strictly_worse() {
        let cmp = SatComparison {
            scale: Scale::Quick,
            runs: vec![run("modern", "b", 30, 2000), run("legacy", "b", 20, 1000)],
        };
        assert!(cmp.gates().is_err());
    }

    #[test]
    fn gates_fail_on_an_empty_comparison() {
        let cmp = SatComparison { scale: Scale::Quick, runs: Vec::new() };
        assert!(cmp.gates().unwrap_err().contains("measured nothing"));
    }

    #[test]
    fn gates_fail_on_verdict_drift() {
        let mut worse = run("legacy", "b", 20, 1000);
        worse.verdict = "unsat";
        let cmp =
            SatComparison { scale: Scale::Quick, runs: vec![run("modern", "b", 10, 500), worse] };
        assert!(cmp.gates().unwrap_err().contains("verdict drift"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let cmp = SatComparison {
            scale: Scale::Quick,
            runs: vec![run("modern", "b", 10, 500), run("legacy", "b", 20, 1000)],
        };
        let json = cmp.to_json();
        assert!(json.contains("\"total_conflicts_modern\": 10"));
        assert!(json.contains("\"total_conflicts_legacy\": 20"));
        assert!(json.contains("\"total_propagations_modern\": 500"));
        assert!(json.contains("\"gates_pass\": true"));
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn comparison_runs_a_tiny_sweep() {
        let arch = Architecture::intel_cyclone10lp();
        let bench = &Scale::Quick.suite(arch.name())[0];
        let modern = run_one(&arch, bench, Scale::Quick, "modern", modern_config()).unwrap();
        let legacy = run_one(&arch, bench, Scale::Quick, "legacy", legacy_config()).unwrap();
        assert_eq!(modern.verdict, legacy.verdict);
        assert!(modern.propagations > 0 && legacy.propagations > 0);
    }
}
