//! Experiment E3 — Figure 7: histogram of Lakeroad synthesis runtimes per
//! architecture, with the timeout threshold marked.

use lr_arch::Architecture;
use lr_bench::{print_histogram, run_all, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("E3 (Figure 7): synthesis runtime histograms, {scale:?} scale");
    for (name, results) in run_all(scale) {
        print_histogram(&Architecture::load(name), &results, scale.timeout(name));
    }
}
