//! Incremental-CEGIS comparison experiment: runs the DSP sweep once with
//! persistent solver state and once from scratch, prints the per-benchmark
//! speedups, and writes the machine-readable `BENCH_cegis.json` report.
//! Scale is selected with `--quick` (default), `--smoke`, or `--full`.

use lr_bench::cegis::{report_and_write, run_cegis_comparison};
use lr_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("Incremental CEGIS comparison at {scale:?} scale");
    report_and_write(&run_cegis_comparison(scale));
}
