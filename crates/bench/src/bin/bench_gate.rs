//! The deterministic bench-regression gate.
//!
//! ```text
//! bench_gate [<baseline-dir>] [<fresh-dir>]
//! ```
//!
//! Compares the freshly emitted `BENCH_*.json` records in `<fresh-dir>` (default
//! `.`) against the committed baselines in `<baseline-dir>` (default
//! `ci-baselines`) on deterministic counters only — conflicts, propagations,
//! fold counts, cache hit rates, verdict tallies; never wall clock — and exits
//! non-zero on any regression. CI stashes the committed records into the
//! baseline directory before rerunning the sweeps, then runs this binary.

use std::path::Path;
use std::process::ExitCode;

use lr_bench::gate::run_gate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.len() > 2 {
        eprintln!("usage: bench_gate [<baseline-dir>] [<fresh-dir>]");
        return ExitCode::from(2);
    }
    let baseline_dir = args.first().map(String::as_str).unwrap_or("ci-baselines");
    let fresh_dir = args.get(1).map(String::as_str).unwrap_or(".");
    match run_gate(Path::new(baseline_dir), Path::new(fresh_dir)) {
        Ok(checked) => {
            if checked.is_empty() {
                eprintln!("bench_gate: no baselines found in `{baseline_dir}` — nothing gated");
            } else {
                println!(
                    "bench_gate: {} record(s) within tolerance of `{baseline_dir}`: {}",
                    checked.len(),
                    checked.join(", ")
                );
            }
            ExitCode::SUCCESS
        }
        Err(failures) => {
            eprintln!("bench_gate: {} regression(s) detected:", failures.len());
            for failure in failures {
                eprintln!("  - {failure}");
            }
            eprintln!(
                "(deterministic counters only; if this change is intentional, regenerate \
                 and commit the BENCH_*.json baselines)"
            );
            ExitCode::FAILURE
        }
    }
}
