//! Experiment E1/E2 — Figure 6: completeness of DSP mapping per architecture and
//! tool, plus mapping-time summaries. Scale: `--quick` (default), `--smoke`, `--full`.

use lr_arch::Architecture;
use lr_bench::{print_completeness, run_all, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("E1/E2 (Figure 6): completeness and timing, {scale:?} scale");
    for (name, results) in run_all(scale) {
        print_completeness(&Architecture::load(name), &results);
    }
}
