//! Tracing overhead and identity experiment: runs the DSP sweep once with
//! `lr_trace` disabled and once enabled, proves the deterministic synthesis
//! counters are bit-identical in both modes, inventories the recorded spans,
//! and writes the machine-readable `BENCH_trace.json` record. Scale is
//! selected with `--quick` (default), `--smoke`, or `--full`.

use lr_bench::trace::{report_and_write, run_trace_comparison};
use lr_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("Tracing overhead/identity comparison at {scale:?} scale");
    let comparison = run_trace_comparison(scale);
    report_and_write(&comparison);
    if !comparison.gates_pass() {
        std::process::exit(1);
    }
}
