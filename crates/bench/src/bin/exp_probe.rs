//! Single-benchmark CEGIS diagnostic: runs one named Xilinx microbenchmark in both
//! solving modes and prints the run statistics. Combine with `LR_CEGIS_TRACE=1`
//! (per-check timing/conflicts) and `LR_CEGIS_TRACE_TERMS=1` (the unfolded
//! verification disequality) to localize where a slow benchmark spends its time.
//!
//! ```sh
//! LR_CEGIS_TRACE=1 cargo run --release -p lr_bench --bin exp_probe -- mul_w8_s1
//! ```
use std::time::Instant;

use lakeroad::suite::suite_for;
use lakeroad::{generate_sketch, pipeline_depth, Template};
use lr_arch::{ArchName, Architecture};
use lr_synth::{synthesize, SynthesisConfig, SynthesisOutcome, SynthesisTask};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mul_w8_s1".into());
    let arch = Architecture::xilinx_ultrascale_plus();
    let bench = suite_for(ArchName::XilinxUltraScalePlus, [8u32].into_iter())
        .into_iter()
        .find(|b| b.name == which)
        .expect("benchmark exists");
    let spec = bench.build();
    let sketch = generate_sketch(Template::Dsp, &arch, &spec).unwrap();
    let t = pipeline_depth(&spec);
    let task = SynthesisTask::over_window(&spec, &sketch, t, 2);
    for incremental in [true, false] {
        let config = SynthesisConfig { timeout: None, incremental, ..Default::default() };
        let start = Instant::now();
        let outcome = synthesize(&task, &config).unwrap();
        let stats = outcome.stats().clone();
        let verdict = match &outcome {
            SynthesisOutcome::Success(_) => "success",
            SynthesisOutcome::Unsat { .. } => "unsat",
            SynthesisOutcome::Timeout { .. } => "timeout",
        };
        println!(
            "{which} incr={incremental}: {verdict} in {:.1} ms, iters={}, examples={}, \
             conflicts={}, verify_sat={}, enc={}, reenc={}, reuse={}",
            start.elapsed().as_secs_f64() * 1e3,
            stats.iterations,
            stats.examples,
            stats.conflicts,
            stats.verification_used_sat,
            stats.constraints_encoded,
            stats.constraints_reencoded,
            stats.learnt_clauses_reused,
        );
    }
}
