//! Single-benchmark CEGIS diagnostic: runs one named Xilinx microbenchmark in both
//! solving modes and prints the run statistics. Per-check timing and conflict
//! detail now comes from `lr_trace` spans rather than ad-hoc prints: setting
//! `LR_CEGIS_TRACE=1` enables the tracer with stderr echo, so every recorded
//! span (`cegis-iteration`, `synth-check`, `verify-check`, `sat-check`, …)
//! prints one `[lr_trace]` line with its duration and attributes as it closes.
//! `LR_CEGIS_TRACE_TERMS=1` additionally echoes the unfolded verification
//! disequality, to localize where a slow benchmark spends its time.
//!
//! ```sh
//! LR_CEGIS_TRACE=1 cargo run --release -p lr_bench --bin exp_probe -- mul_w8_s1
//! ```
//!
//! For a whole-pipeline view (with Chrome `about:tracing` output and a stage
//! summary) prefer `lakeroad --trace out.json <design>`; this probe stays the
//! quick single-benchmark loupe.
use std::time::Instant;

use lakeroad::suite::suite_for;
use lakeroad::{generate_sketch, pipeline_depth, Template};
use lr_arch::{ArchName, Architecture};
use lr_synth::{synthesize, SynthesisConfig, SynthesisOutcome, SynthesisTask};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mul_w8_s1".into());
    let arch = Architecture::xilinx_ultrascale_plus();
    let bench = suite_for(ArchName::XilinxUltraScalePlus, [8u32].into_iter())
        .into_iter()
        .find(|b| b.name == which)
        .expect("benchmark exists");
    let spec = bench.build();
    let sketch = generate_sketch(Template::Dsp, &arch, &spec).unwrap();
    let t = pipeline_depth(&spec);
    let task = SynthesisTask::over_window(&spec, &sketch, t, 2);
    for incremental in [true, false] {
        let config = SynthesisConfig { timeout: None, incremental, ..Default::default() };
        let start = Instant::now();
        let outcome = synthesize(&task, &config).unwrap();
        let stats = outcome.stats().clone();
        let verdict = match &outcome {
            SynthesisOutcome::Success(_) => "success",
            SynthesisOutcome::Unsat { .. } => "unsat",
            SynthesisOutcome::Timeout { .. } => "timeout",
        };
        println!(
            "{which} incr={incremental}: {verdict} in {:.1} ms, iters={}, examples={}, \
             conflicts={}, verify_sat={}, enc={}, reenc={}, reuse={}",
            start.elapsed().as_secs_f64() * 1e3,
            stats.iterations,
            stats.examples,
            stats.conflicts,
            stats.verification_used_sat,
            stats.constraints_encoded,
            stats.constraints_reencoded,
            stats.learnt_clauses_reused,
        );
    }
}
