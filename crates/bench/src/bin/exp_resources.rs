//! Experiment E4 — §5.1 resource reduction: average logic elements and registers
//! saved by Lakeroad relative to the modelled SOTA and Yosys baselines.

use lr_arch::Architecture;
use lr_bench::{print_resources, run_all, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("E4: resource reduction vs. baselines, {scale:?} scale");
    for (name, results) in run_all(scale) {
        print_resources(&Architecture::load(name), &results);
    }
}
