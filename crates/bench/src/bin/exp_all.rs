//! Runs every experiment and prints every table/figure of the paper's evaluation.
//! Scale is selected with `--quick` (default), `--smoke`, or `--full`.
//!
//! The completeness sweeps run their independent mapping jobs on the `lr_serve`
//! work-stealing scheduler; `--jobs <N>` picks the worker count (default: the
//! machine's parallelism). For jobs that finish within their budget, verdicts,
//! resources, and tallies are identical at any worker count — per-job wall
//! times are measured under whatever CPU contention the workers create, and a
//! job running close to its wall-clock budget can flip to a timeout under
//! that contention, so use `--jobs 1` for contention-free, paper-faithful
//! Figure 6/7 numbers.

use lr_arch::Architecture;
use lr_bench::{
    cegis::{report_and_write, run_cegis_comparison},
    print_completeness, print_extensibility, print_histogram, print_portfolio,
    print_primitives_table, print_resources, run_all, Scale,
};

fn main() {
    let scale = Scale::from_args();
    println!(
        "Lakeroad reproduction: full evaluation at {scale:?} scale ({} scheduler workers)",
        Scale::workers_from_args()
    );
    let results = run_all(scale);
    for (name, arch_results) in &results {
        let arch = Architecture::load(*name);
        print_completeness(&arch, arch_results);
        print_histogram(&arch, arch_results, scale.timeout(*name));
        print_resources(&arch, arch_results);
    }
    print_portfolio(&results);
    print_primitives_table();
    print_extensibility();

    // Incremental-CEGIS perf tracking: rerun the sweep single-solver in both modes
    // and leave a machine-readable record next to the textual report.
    report_and_write(&run_cegis_comparison(scale));
}
