//! Runs every experiment and prints every table/figure of the paper's evaluation.
//! Scale is selected with `--quick` (default), `--smoke`, or `--full`.

use lr_arch::Architecture;
use lr_bench::{
    cegis::{report_and_write, run_cegis_comparison},
    print_completeness, print_extensibility, print_histogram, print_portfolio,
    print_primitives_table, print_resources, run_all, Scale,
};

fn main() {
    let scale = Scale::from_args();
    println!("Lakeroad reproduction: full evaluation at {scale:?} scale");
    let results = run_all(scale);
    for (name, arch_results) in &results {
        let arch = Architecture::load(*name);
        print_completeness(&arch, arch_results);
        print_histogram(&arch, arch_results, scale.timeout(*name));
        print_resources(&arch, arch_results);
    }
    print_portfolio(&results);
    print_primitives_table();
    print_extensibility();

    // Incremental-CEGIS perf tracking: rerun the sweep single-solver in both modes
    // and leave a machine-readable record next to the textual report.
    report_and_write(&run_cegis_comparison(scale));
}
