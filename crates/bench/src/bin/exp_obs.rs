//! The observability experiment: the same mixed workload (cold, warm, poison)
//! run forensics-off and forensics-on, proving the flight recorder changes no
//! deterministic synthesis counter, every completed request leaves a
//! retrievable bundle under `--slow-ms 0`, and the `metrics` exposition is
//! well-formed OpenMetrics text. Writes `BENCH_obs.json` and exits non-zero
//! if an acceptance gate fails — CI runs this at `--quick`.

use std::process::ExitCode;

use lr_bench::obs::{report_and_write, run_obs_experiment};
use lr_bench::Scale;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    println!("Observability experiment at {scale:?} scale");
    let report = run_obs_experiment(scale);
    match report_and_write(&report) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            eprintln!("exp_obs gates failed: {failures}");
            ExitCode::FAILURE
        }
    }
}
