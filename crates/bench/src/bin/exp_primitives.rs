//! Experiment E6 — Table 1: the primitives whose semantics the tool imports, with
//! the size of each primitive model.

use lr_bench::print_primitives_table;

fn main() {
    println!("E6 (Table 1): imported primitive models");
    print_primitives_table();
}
