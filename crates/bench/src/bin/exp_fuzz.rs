//! The differential HDL fuzzing firehose: seeded mini-Verilog modules through
//! the parse → elaborate → emit round-trip oracle, plus mapped-implementation
//! agreement on a bounded prefix. Writes `BENCH_fuzz.json` and exits non-zero
//! on any mismatch (the gates are zero-tolerance) — CI runs this at `--quick`.

use std::process::ExitCode;

use lr_bench::fuzz::{report_and_write, run_fuzz_experiment};
use lr_bench::Scale;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    println!("HDL fuzz firehose at {scale:?} scale");
    let report = run_fuzz_experiment(scale);
    match report_and_write(&report) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            eprintln!("exp_fuzz gates failed: {failures}");
            ExitCode::FAILURE
        }
    }
}
