//! Experiment E7 — §5.2 extensibility: the size of each architecture description,
//! compared against the figures the paper reports.

use lr_bench::print_extensibility;

fn main() {
    println!("E7: extensibility (architecture description sizes)");
    print_extensibility();
}
