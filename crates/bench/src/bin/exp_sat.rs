//! The CDCL-modernization experiment driver: runs the e2e mapping tier through
//! synthesis under the modernized solver configuration (LBD tiers + EMA restarts)
//! and the old-style one (activity deletion + Luby restarts), writes
//! `BENCH_sat.json`, and exits non-zero if the modernized configuration does
//! strictly more search work or any verdict drifts. Scale is selected with
//! `--quick` (default), `--smoke`, or `--full`.

use std::process::ExitCode;

use lr_bench::sat::{report_and_write, run_sat_comparison};
use lr_bench::Scale;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    println!("CDCL modernization experiment at {scale:?} scale");
    let comparison = run_sat_comparison(scale);
    match report_and_write(&comparison) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            eprintln!("exp_sat gates failed: {failures}");
            ExitCode::FAILURE
        }
    }
}
