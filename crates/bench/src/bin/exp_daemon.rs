//! The daemon-serving experiment: N concurrent clients against an in-process
//! `lakeroad serve` daemon, cold then warm. Writes `BENCH_daemon.json` and
//! exits non-zero if an acceptance gate fails (a warm verdict not served from
//! the shared cache, lost or rejected jobs in the drain accounting, or warm
//! verdict drift) — CI runs this at `--quick`.

use std::process::ExitCode;

use lr_bench::daemon::{report_and_write, run_daemon_experiment};
use lr_bench::Scale;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    println!("Daemon-serving experiment at {scale:?} scale");
    let report = run_daemon_experiment(scale);
    match report_and_write(&report) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            eprintln!("exp_daemon gates failed: {failures}");
            ExitCode::FAILURE
        }
    }
}
