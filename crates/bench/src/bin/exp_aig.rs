//! The structural-frontend experiment: map the committed AIGER/`.bench`
//! fixtures through the cone-partitioned netlist pipeline (`lr_serve::netlist`)
//! cold and warm, verify every stitch against the source AIG, and write
//! `BENCH_aig.json`. Exits non-zero if a gate fails (any verification
//! mismatch, a warm cone missing the cache, a cone wider than the LUT, or a
//! register-count drift) — CI runs this at `--quick`.

use std::process::ExitCode;

use lr_bench::aig::{report_and_write, run_aig_experiment};
use lr_bench::Scale;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let workers = Scale::workers_from_args();
    println!("Structural-frontend experiment at {scale:?} scale ({workers} workers)");
    let report = run_aig_experiment(scale, workers);
    match report_and_write(&report) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            eprintln!("exp_aig gates failed: {failures}");
            ExitCode::FAILURE
        }
    }
}
