//! The equality-saturation experiment driver: monster-disequality folds, spec
//! canonicalization over the sweep, and the CEGIS egraph-on/off ablation, written
//! to `BENCH_egraph.json`. Scale is selected with `--quick` (default), `--smoke`,
//! or `--full`.

use lr_bench::egraph::{report_and_write, run_egraph_experiment};
use lr_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("Lakeroad reproduction: equality-saturation experiment at {scale:?} scale");
    let report = run_egraph_experiment(scale);
    report_and_write(&report);
    if !report.all_monsters_fold() {
        eprintln!("error: a monster disequality no longer folds by saturation alone");
        std::process::exit(1);
    }
}
