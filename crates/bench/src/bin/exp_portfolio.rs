//! Experiment E5 — §5.1 solver portfolio: which portfolio member finished first for
//! each terminating Lakeroad run (the paper's Bitwuzla/STP/Yices2/cvc5 counts).

use lr_bench::{print_portfolio, run_all, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("E5: solver portfolio win counts, {scale:?} scale");
    let results = run_all(scale);
    print_portfolio(&results);
}
