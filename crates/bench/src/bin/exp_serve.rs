//! The batch-serving experiment: scheduler scaling over a mixed workload and
//! warm-cache effectiveness over a repeated one. Writes `BENCH_serve.json` and
//! exits non-zero if an acceptance gate fails (warm hit rate below 100%, warm
//! verdict drift, or 4 workers slower than 1) — CI runs this at `--quick`.

use std::process::ExitCode;

use lr_bench::serve::{report_and_write, run_serve_experiment};
use lr_bench::Scale;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    println!("Batch-serving experiment at {scale:?} scale");
    let report = run_serve_experiment(scale);
    match report_and_write(&report) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            eprintln!("exp_serve gates failed: {failures}");
            ExitCode::FAILURE
        }
    }
}
