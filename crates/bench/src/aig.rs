//! The structural-frontend experiment: map the committed AIGER/`.bench`
//! fixtures through the cone-partitioned netlist pipeline, cold and warm, and
//! record the deterministic cone accounting in `BENCH_aig.json`.
//!
//! Each fixture (ISCAS c17 plus two generated AIGER netlists, >1300 ANDs in
//! total, the largest >=1000 on its own) runs twice over one shared
//! [`SynthCache`]:
//!
//! * **cold** — every distinct cone synthesizes once; isomorphic cones
//!   (identical canonical `x0..xK` specs) collapse into cache hits even within
//!   the first run;
//! * **warm** — the identical mapping repeated against the same cache must be
//!   served entirely from it.
//!
//! Both runs stitch the per-cone implementations back together and verify the
//! result against the source AIG on seeded random stimulus. The gates are
//! zero-tolerance: any verification mismatch, any warm cone missing the cache,
//! or any cone wider than the LUT fails the run — and `check_aig` in
//! [`crate::gate`] additionally pins the cone/coverage counters to the
//! committed baseline exactly, because the partitioner is deterministic.

use std::path::Path;
use std::sync::Arc;

use lakeroad::MapConfig;
use lr_aig::Aig;
use lr_arch::{ArchName, Architecture};
use lr_serve::{map_netlist, NetlistOptions, NetlistReport, SynthCache};

use crate::Scale;

/// Where the machine-readable record is written (repo-relative; CI uploads
/// this exact path as an artifact, next to the other `BENCH_*.json` records).
pub const REPORT_PATH: &str = "BENCH_aig.json";

/// The committed fixtures, relative to the crate's `fixtures/aig/` directory.
pub const FIXTURES: [&str; 3] = ["c17.bench", "rand_large.aag", "rand_mid.aig"];

/// The target architecture: a 4-LUT device, so every cone is a one-LUT
/// Bitwise problem.
pub const ARCH: ArchName = ArchName::IntelCyclone10Lp;

/// One fixture's cold + warm record.
#[derive(Debug, Clone)]
pub struct FixtureRun {
    /// Fixture file name.
    pub name: String,
    /// AND gates in the parsed AIG.
    pub ands: usize,
    /// Latches in the parsed AIG.
    pub latches: usize,
    /// Outputs in the parsed AIG.
    pub outputs: usize,
    /// Cones the partitioner cut.
    pub cones: usize,
    /// AND gates covered across cone bodies (clones counted per cone).
    pub covered_ands: usize,
    /// Widest cone (leaves); must stay within the LUT size.
    pub max_leaves: usize,
    /// Distinct cone specs after canonical leaf naming — what the cache can
    /// collapse the cone population down to.
    pub unique_cones: usize,
    /// Cone jobs served from the cache during the cold run (isomorphic-cone
    /// collapse; timing-dependent under parallel workers, so ungated).
    pub cold_cache_hits: usize,
    /// Cone jobs served from the cache during the warm run (must be all).
    pub warm_cache_hits: usize,
    /// Logic elements of the stitched implementation.
    pub logic_elements: usize,
    /// Register bits of the stitched implementation.
    pub registers: usize,
    /// Verification environments replayed (each cold and warm).
    pub verify_environments: usize,
    /// Verification cycles per environment.
    pub verify_cycles: usize,
    /// Output-bit mismatches across both verification sweeps (must be 0).
    pub verify_mismatches: usize,
    /// Cold-run wall clock (ungated).
    pub cold_wall_ms: f64,
    /// Warm-run wall clock (ungated).
    pub warm_wall_ms: f64,
}

/// The full experiment record.
#[derive(Debug, Clone)]
pub struct AigReport {
    /// The sweep scale (sets the verification sweep size).
    pub scale: Scale,
    /// Per-fixture records.
    pub fixtures: Vec<FixtureRun>,
    /// Fixtures that failed to map end to end, with the error.
    pub failures: Vec<String>,
}

impl AigReport {
    /// Total AND gates across all fixtures.
    pub fn total_ands(&self) -> usize {
        self.fixtures.iter().map(|f| f.ands).sum()
    }

    /// The largest single fixture's AND count.
    pub fn largest_fixture_ands(&self) -> usize {
        self.fixtures.iter().map(|f| f.ands).max().unwrap_or(0)
    }

    /// Total cones across all fixtures.
    pub fn total_cones(&self) -> usize {
        self.fixtures.iter().map(|f| f.cones).sum()
    }

    /// Total distinct cone specs across all fixtures.
    pub fn unique_cones(&self) -> usize {
        self.fixtures.iter().map(|f| f.unique_cones).sum()
    }

    /// Total verification mismatches (must be 0).
    pub fn total_mismatches(&self) -> usize {
        self.fixtures.iter().map(|f| f.verify_mismatches).sum()
    }

    /// Whether every warm cone was served from the cache.
    pub fn warm_all_hits(&self) -> bool {
        self.fixtures.iter().all(|f| f.warm_cache_hits == f.cones)
    }

    /// The failed acceptance gates, empty when the experiment is healthy.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = self.failures.clone();
        let lut = Architecture::load(ARCH).lut_size() as usize;
        for f in &self.fixtures {
            if f.verify_mismatches > 0 {
                failures.push(format!(
                    "{}: stitched design disagrees with the netlist on {} bits",
                    f.name, f.verify_mismatches
                ));
            }
            if f.warm_cache_hits != f.cones {
                failures.push(format!(
                    "{}: only {} of {} warm cones were served from the cache",
                    f.name, f.warm_cache_hits, f.cones
                ));
            }
            if f.max_leaves > lut {
                failures.push(format!(
                    "{}: a cone has {} leaves, wider than the {lut}-LUT",
                    f.name, f.max_leaves
                ));
            }
            if f.registers != f.latches {
                failures.push(format!(
                    "{}: stitched register bits ({}) drifted from source latches ({})",
                    f.name, f.registers, f.latches
                ));
            }
        }
        if self.largest_fixture_ands() < 1000 {
            failures.push(format!(
                "largest fixture has {} ANDs, expected a >=1000-AND netlist",
                self.largest_fixture_ands()
            ));
        }
        failures
    }

    /// Renders the record as a JSON document (dependency-free, like the other
    /// `BENCH_*.json` writers; the format is stable for CI consumption).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"total_ands\": {},\n", self.total_ands()));
        out.push_str(&format!("  \"largest_fixture_ands\": {},\n", self.largest_fixture_ands()));
        out.push_str(&format!("  \"total_cones\": {},\n", self.total_cones()));
        out.push_str(&format!("  \"unique_cones\": {},\n", self.unique_cones()));
        out.push_str(&format!("  \"total_mismatches\": {},\n", self.total_mismatches()));
        out.push_str(&format!("  \"warm_all_hits\": {},\n", self.warm_all_hits()));
        out.push_str(&format!("  \"gates_pass\": {},\n", self.gate_failures().is_empty()));
        out.push_str("  \"fixtures\": [\n");
        for (i, f) in self.fixtures.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ands\": {}, \"latches\": {}, \"outputs\": {}, \
                 \"cones\": {}, \"covered_ands\": {}, \"max_leaves\": {}, \"unique_cones\": {}, \
                 \"cold_cache_hits\": {}, \"warm_cache_hits\": {}, \"logic_elements\": {}, \
                 \"registers\": {}, \"verify_environments\": {}, \"verify_cycles\": {}, \
                 \"verify_mismatches\": {}, \"cold_wall_ms\": {:.3}, \"warm_wall_ms\": {:.3}}}{}\n",
                f.name,
                f.ands,
                f.latches,
                f.outputs,
                f.cones,
                f.covered_ands,
                f.max_leaves,
                f.unique_cones,
                f.cold_cache_hits,
                f.warm_cache_hits,
                f.logic_elements,
                f.registers,
                f.verify_environments,
                f.verify_cycles,
                f.verify_mismatches,
                f.cold_wall_ms,
                f.warm_wall_ms,
                if i + 1 < self.fixtures.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!(
            "\n-- Structural frontend: {} fixtures, {} ANDs total --",
            self.fixtures.len(),
            self.total_ands()
        );
        for f in &self.fixtures {
            println!(
                "  {:16} {:5} ANDs {:2} latches -> {:4} cones ({} unique, widest {}) \
                 cold {:8.1} ms ({} cache hits), warm {:7.1} ms ({} hits), \
                 {} LEs, verify {}x{} with {} mismatches",
                f.name,
                f.ands,
                f.latches,
                f.cones,
                f.unique_cones,
                f.max_leaves,
                f.cold_wall_ms,
                f.cold_cache_hits,
                f.warm_wall_ms,
                f.warm_cache_hits,
                f.logic_elements,
                f.verify_environments,
                f.verify_cycles,
                f.verify_mismatches,
            );
        }
        for failure in self.gate_failures() {
            println!("  GATE FAILED: {failure}");
        }
    }
}

/// The crate-relative fixtures directory.
pub fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/aig")
}

/// Counts the distinct cone specs of a partition after stripping the
/// root-specific program name — the population the synthesis cache can
/// collapse. The partitioner names leaves canonically (`x0..xK` in discovery
/// order), so a rendered spec with the name removed is an isomorphism key.
fn count_unique_cones(partition: &lr_aig::Partition) -> usize {
    let mut seen = std::collections::BTreeSet::new();
    for cone in &partition.cones {
        let rendered = format!("{:?}", cone.spec);
        let stripped = rendered.replacen(cone.spec.name(), "", 1);
        seen.insert(stripped);
    }
    seen.len()
}

fn run_fixture(name: &str, aig: &Aig, scale: Scale, workers: usize) -> Result<FixtureRun, String> {
    let cache = Arc::new(SynthCache::new());
    let mut options = NetlistOptions::new(ARCH);
    options.workers = workers;
    options.map = MapConfig::default()
        .with_timeout(scale.timeout(ARCH))
        .with_cache(Arc::<SynthCache>::clone(&cache) as Arc<_>);
    options.verify_environments = match scale {
        Scale::Quick => 32,
        Scale::Smoke => 64,
        Scale::Full => 128,
    };

    let cold: NetlistReport =
        map_netlist(aig, &options, |_| {}).map_err(|e| format!("{name} (cold): {e}"))?;
    let warm: NetlistReport =
        map_netlist(aig, &options, |_| {}).map_err(|e| format!("{name} (warm): {e}"))?;

    let arch = Architecture::load(ARCH);
    let cone_opts = lr_aig::ConeOptions {
        max_leaves: arch.lut_size() as usize,
        max_ands: options.max_cone_ands,
    };
    let partition = lr_aig::partition(aig, &cone_opts);

    Ok(FixtureRun {
        name: name.to_string(),
        ands: aig.num_ands(),
        latches: aig.num_latches(),
        outputs: aig.outputs().len(),
        cones: cold.cones,
        covered_ands: cold.covered_ands,
        max_leaves: cold.max_leaves,
        unique_cones: count_unique_cones(&partition),
        cold_cache_hits: cold.cache_hits,
        warm_cache_hits: warm.cache_hits,
        logic_elements: cold.resources.logic_elements,
        registers: cold.resources.registers,
        verify_environments: cold.verify.environments,
        verify_cycles: cold.verify.cycles,
        verify_mismatches: cold.verify.mismatches + warm.verify.mismatches,
        cold_wall_ms: cold.elapsed.as_secs_f64() * 1e3,
        warm_wall_ms: warm.elapsed.as_secs_f64() * 1e3,
    })
}

/// Runs the full experiment at `scale` with `workers` scheduler threads.
pub fn run_aig_experiment(scale: Scale, workers: usize) -> AigReport {
    let dir = fixtures_dir();
    let mut report = AigReport { scale, fixtures: Vec::new(), failures: Vec::new() };
    for file in FIXTURES {
        let path = dir.join(file);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                report.failures.push(format!("cannot read `{}`: {e}", path.display()));
                continue;
            }
        };
        let aig = match lr_aig::parse_netlist(&bytes, path.to_str()) {
            Ok(aig) => aig.with_name(file.split('.').next().unwrap_or(file)),
            Err(e) => {
                report.failures.push(format!("{file}: {e}"));
                continue;
            }
        };
        match run_fixture(file, &aig, scale, workers) {
            Ok(run) => report.fixtures.push(run),
            Err(e) => report.failures.push(e),
        }
    }
    report
}

/// Prints the summary, writes [`REPORT_PATH`], and reports gate failures.
pub fn report_and_write(report: &AigReport) -> Result<(), String> {
    report.print_summary();
    match report.write_json(REPORT_PATH) {
        Ok(()) => println!(
            "wrote {REPORT_PATH} ({} fixtures, {} cones)",
            report.fixtures.len(),
            report.total_cones(),
        ),
        Err(e) => eprintln!("failed to write {REPORT_PATH}: {e}"),
    }
    let failures = report.gate_failures();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fixture() -> FixtureRun {
        FixtureRun {
            name: "c17.bench".into(),
            ands: 6,
            latches: 0,
            outputs: 2,
            cones: 2,
            covered_ands: 7,
            max_leaves: 4,
            unique_cones: 2,
            cold_cache_hits: 0,
            warm_cache_hits: 2,
            logic_elements: 2,
            registers: 0,
            verify_environments: 32,
            verify_cycles: 8,
            verify_mismatches: 0,
            cold_wall_ms: 120.0,
            warm_wall_ms: 4.0,
        }
    }

    fn sample_report() -> AigReport {
        let mut big = sample_fixture();
        big.name = "rand_large.aag".into();
        big.ands = 1100;
        big.latches = 6;
        big.cones = 400;
        big.covered_ands = 1300;
        big.unique_cones = 60;
        big.cold_cache_hits = 340;
        big.warm_cache_hits = 400;
        big.registers = 6;
        AigReport {
            scale: Scale::Quick,
            fixtures: vec![sample_fixture(), big],
            failures: Vec::new(),
        }
    }

    #[test]
    fn healthy_reports_pass_the_gates() {
        let report = sample_report();
        assert!(report.gate_failures().is_empty(), "{:?}", report.gate_failures());
        assert_eq!(report.total_ands(), 1106);
        assert_eq!(report.largest_fixture_ands(), 1100);
        assert!(report.warm_all_hits());
    }

    #[test]
    fn each_gate_trips() {
        let mut mismatch = sample_report();
        mismatch.fixtures[0].verify_mismatches = 1;
        assert!(mismatch.gate_failures().iter().any(|f| f.contains("disagrees")));

        let mut cold_warm = sample_report();
        cold_warm.fixtures[1].warm_cache_hits = 399;
        assert!(cold_warm.gate_failures().iter().any(|f| f.contains("warm cones")));

        let mut wide = sample_report();
        wide.fixtures[0].max_leaves = 5;
        assert!(wide.gate_failures().iter().any(|f| f.contains("wider")));

        let mut regs = sample_report();
        regs.fixtures[1].registers = 5;
        assert!(regs.gate_failures().iter().any(|f| f.contains("register bits")));

        let mut small = sample_report();
        small.fixtures[1].ands = 900;
        assert!(small.gate_failures().iter().any(|f| f.contains(">=1000")));

        let mut failed = sample_report();
        failed.failures.push("rand_mid.aig (cold): cone `x` did not map: timeout".into());
        assert!(failed.gate_failures().iter().any(|f| f.contains("did not map")));
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains("\"gates_pass\": true"));
        assert!(json.contains("\"total_mismatches\": 0"));
        assert!(json.contains("\"warm_all_hits\": true"));
        assert!(json.contains("\"name\": \"rand_large.aag\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        crate::gate::Json::parse(&json).expect("mini parser reads the record");
    }

    #[test]
    fn the_committed_fixtures_parse_and_are_large_enough() {
        let dir = fixtures_dir();
        let mut total = 0;
        let mut largest = 0;
        for file in FIXTURES {
            let bytes = std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
            let aig =
                lr_aig::parse_netlist(&bytes, Some(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
            assert!(!aig.outputs().is_empty(), "{file} has no outputs");
            total += aig.num_ands();
            largest = largest.max(aig.num_ands());
        }
        assert!(total >= 1000, "fixtures total {total} ANDs, expected >=1000");
        assert!(largest >= 1000, "largest fixture has {largest} ANDs, expected >=1000");
    }
}
