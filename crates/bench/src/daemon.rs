//! The daemon-serving experiment: N concurrent clients against an in-process
//! `lakeroad serve` daemon, cold then warm, recorded in `BENCH_daemon.json`.
//!
//! The daemon's value proposition is the *shared resident cache*: once any
//! client has paid for a verdict, every later client gets it warm. The
//! experiment drives that end to end over real TCP connections:
//!
//! 1. **Cold phase** — one client walks K distinct suite mappings so the
//!    shared cache is warmed by ordinary traffic (no preloading).
//! 2. **Warm phase** — N concurrent clients each request the same K mappings.
//!    Every one of the N×K verdicts must come from the cache, and the p50/p99
//!    response latencies (reported, not gated — wall clock) show what resident
//!    serving buys over cold synthesis.
//! 3. **Drain** — a graceful shutdown; the daemon's own accounting must show
//!    `accepted == completed` (zero lost jobs) and zero admission rejections
//!    for this in-bounds workload.
//!
//! The gates are deterministic counters: phase hit/store deltas come from the
//! daemon's `stats` request, the job accounting from the drain summary.

use std::time::Instant;

use lakeroad::suite::suite_for;
use lakeroad::MapConfig;
use lr_arch::ArchName;
use lr_serve::{Daemon, DaemonClient, DaemonConfig, DaemonSummary, Json};

use crate::Scale;

/// Where the machine-readable record is written (repo-relative; CI uploads
/// this exact path as an artifact, next to the other `BENCH_*.json` files).
pub const REPORT_PATH: &str = "BENCH_daemon.json";

/// Cache totals as the daemon's `stats` request reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Lookup hits since daemon start.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Stored verdicts.
    pub stores: u64,
    /// Capacity evictions.
    pub evictions: u64,
}

impl CacheTotals {
    fn from_stats(doc: &Json) -> CacheTotals {
        let n =
            |field| doc.get(&["cache", field]).and_then(Json::as_f64).unwrap_or_default() as u64;
        CacheTotals {
            hits: n("hits"),
            misses: n("misses"),
            stores: n("stores"),
            evictions: n("evictions"),
        }
    }
}

/// One phase's client-side observations.
#[derive(Debug, Clone)]
pub struct PhaseRecord {
    /// Phase wall-clock time.
    pub wall_ms: f64,
    /// Per-response latencies (request sent → response parsed), sorted.
    pub latencies_ms: Vec<f64>,
    /// Responses whose verdict was served from the shared cache.
    pub from_cache: u64,
    /// Per-request verdict letters (`s`/`u`/`t`/`e`), submission order. For
    /// the warm phase, one string per client.
    pub verdicts: Vec<String>,
}

impl PhaseRecord {
    /// The `q`-th latency percentile (phase must have responses).
    pub fn percentile_ms(&self, q: f64) -> f64 {
        let n = self.latencies_ms.len();
        let rank = ((n as f64 * q).ceil() as usize).clamp(1, n) - 1;
        self.latencies_ms[rank]
    }
}

/// The full experiment record.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// The sweep scale.
    pub scale: Scale,
    /// Daemon worker threads.
    pub workers: usize,
    /// Concurrent clients in the warm phase.
    pub clients: u64,
    /// Distinct mappings each client requests.
    pub distinct: u64,
    /// Cold phase (one client, K distinct requests).
    pub cold: PhaseRecord,
    /// Warm phase (N clients × K requests).
    pub warm: PhaseRecord,
    /// Cache totals right after the cold phase.
    pub after_cold: CacheTotals,
    /// Cache totals right after the warm phase.
    pub after_warm: CacheTotals,
    /// The drain summary's accounting.
    pub accepted: u64,
    /// See [`DaemonReport::accepted`].
    pub completed: u64,
    /// Admission rejections (must be 0 for this in-bounds workload).
    pub rejected: u64,
    /// Cache entries resident at shutdown.
    pub cache_entries: u64,
}

impl DaemonReport {
    /// Warm-phase cache hits (stats delta over the phase).
    pub fn warm_hits(&self) -> u64 {
        self.after_warm.hits - self.after_cold.hits
    }

    /// Admitted jobs never answered; the drain guarantees 0.
    pub fn lost(&self) -> u64 {
        self.accepted - self.completed
    }

    /// The failed acceptance gates, empty when the experiment is healthy.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        let expected_warm = self.clients * self.distinct;
        if self.warm.from_cache != expected_warm {
            failures.push(format!(
                "only {} of {expected_warm} warm responses were served from the cache",
                self.warm.from_cache,
            ));
        }
        if self.warm_hits() != expected_warm || self.after_warm.misses != self.after_cold.misses {
            failures.push(format!(
                "warm phase was not 100% cache hits ({} hits / {} new misses, expected \
                 {expected_warm} / 0)",
                self.warm_hits(),
                self.after_warm.misses - self.after_cold.misses,
            ));
        }
        if self.lost() != 0 {
            failures.push(format!(
                "{} jobs were lost in the drain ({} accepted, {} completed)",
                self.lost(),
                self.accepted,
                self.completed,
            ));
        }
        if self.rejected != 0 {
            failures
                .push(format!("{} in-bounds requests were rejected at admission", self.rejected));
        }
        let expected_total = self.distinct + expected_warm;
        if self.accepted != expected_total {
            failures.push(format!(
                "accounting mismatch: {} accepted, expected {expected_total}",
                self.accepted
            ));
        }
        let cold = &self.cold.verdicts[0];
        if cold.chars().any(|c| c != 's') {
            failures.push(format!("cold verdicts are not all successes: {cold}"));
        }
        for (i, warm) in self.warm.verdicts.iter().enumerate() {
            if warm != cold {
                failures.push(format!(
                    "client {i}'s warm verdicts drifted from the cold ones ({warm} vs {cold})"
                ));
            }
        }
        failures
    }

    /// Renders the record as a JSON document (dependency-free, stable for CI).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"distinct_requests\": {},\n", self.distinct));
        out.push_str(&format!("  \"accepted\": {},\n", self.accepted));
        out.push_str(&format!("  \"completed\": {},\n", self.completed));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"lost\": {},\n", self.lost()));
        out.push_str(&format!("  \"warm_served\": {},\n", self.warm.from_cache));
        out.push_str(&format!("  \"warm_hits\": {},\n", self.warm_hits()));
        out.push_str(&format!("  \"cold_misses\": {},\n", self.after_cold.misses));
        out.push_str(&format!("  \"cold_stores\": {},\n", self.after_cold.stores));
        out.push_str(&format!("  \"evictions\": {},\n", self.after_warm.evictions));
        out.push_str(&format!("  \"cache_entries\": {},\n", self.cache_entries));
        out.push_str(&format!("  \"cold_wall_ms\": {:.3},\n", self.cold.wall_ms));
        out.push_str(&format!("  \"warm_wall_ms\": {:.3},\n", self.warm.wall_ms));
        out.push_str(&format!("  \"warm_p50_ms\": {:.3},\n", self.warm.percentile_ms(0.50)));
        out.push_str(&format!("  \"warm_p99_ms\": {:.3},\n", self.warm.percentile_ms(0.99)));
        out.push_str(&format!("  \"verdicts_cold\": \"{}\",\n", self.cold.verdicts[0]));
        out.push_str(&format!("  \"gates_pass\": {}\n", self.gate_failures().is_empty()));
        out.push_str("}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!(
            "\n-- Daemon serving: {} distinct mappings, {} warm clients, {} workers --",
            self.distinct, self.clients, self.workers
        );
        println!(
            "  cold  {:8.1} ms  {} misses, {} stores  (p50 {:.1} ms)",
            self.cold.wall_ms,
            self.after_cold.misses,
            self.after_cold.stores,
            self.cold.percentile_ms(0.50),
        );
        println!(
            "  warm  {:8.1} ms  {} hits, {} served  (p50 {:.1} ms, p99 {:.1} ms)",
            self.warm.wall_ms,
            self.warm_hits(),
            self.warm.from_cache,
            self.warm.percentile_ms(0.50),
            self.warm.percentile_ms(0.99),
        );
        println!(
            "  drain: {} accepted / {} completed / {} rejected ({} lost), {} cache entries",
            self.accepted,
            self.completed,
            self.rejected,
            self.lost(),
            self.cache_entries,
        );
        for failure in self.gate_failures() {
            println!("  GATE FAILED: {failure}");
        }
    }
}

fn request_payload(bench: &str, id: u64) -> String {
    format!(
        "{{\"kind\":\"map\",\"id\":{id},\"arch\":\"intel\",\"template\":\"dsp\",\
         \"bench\":\"{bench}\"}}"
    )
}

fn verdict_letter(doc: &Json) -> char {
    match doc.get(&["verdict"]).and_then(Json::as_str) {
        Some("success") => 's',
        Some("unsat") => 'u',
        Some("timeout") => 't',
        _ => 'e',
    }
}

/// One client's pass over the request list; returns (latencies, verdicts,
/// served-from-cache count).
fn run_client(addr: std::net::SocketAddr, benches: &[String]) -> (Vec<f64>, String, u64) {
    let mut client = DaemonClient::connect(addr).expect("daemon accepts connections");
    let mut latencies = Vec::with_capacity(benches.len());
    let mut verdicts = String::with_capacity(benches.len());
    let mut from_cache = 0u64;
    for (i, bench) in benches.iter().enumerate() {
        let start = Instant::now();
        let doc = client.request(&request_payload(bench, i as u64)).expect("daemon responds");
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        verdicts.push(verdict_letter(&doc));
        if doc.get(&["from_cache"]).and_then(Json::as_bool) == Some(true) {
            from_cache += 1;
        }
    }
    (latencies, verdicts, from_cache)
}

fn stats_totals(client: &mut DaemonClient) -> CacheTotals {
    let doc = client.request("{\"kind\":\"stats\"}").expect("stats responds");
    CacheTotals::from_stats(&doc)
}

/// Runs the full experiment at `scale` against a freshly bound daemon.
pub fn run_daemon_experiment(scale: Scale) -> DaemonReport {
    let (distinct, clients) = match scale {
        Scale::Quick => (6usize, 4u64),
        Scale::Smoke => (12, 6),
        Scale::Full => (24, 8),
    };
    let workers = 2;
    let benches: Vec<String> = suite_for(ArchName::IntelCyclone10Lp, [8u32].into_iter())
        .into_iter()
        .take(distinct)
        .map(|b| b.name)
        .collect();
    assert_eq!(benches.len(), distinct, "the suite has enough mappings at this scale");

    let config = DaemonConfig {
        workers,
        map: MapConfig::default().with_timeout(scale.timeout(ArchName::IntelCyclone10Lp)),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::bind(config).expect("daemon binds an ephemeral port");
    let addr = daemon.local_addr();
    let mut observer = DaemonClient::connect(addr).expect("daemon accepts connections");

    // Cold: one client pays for every distinct verdict.
    let cold_start = Instant::now();
    let (mut latencies, verdicts, from_cache) = run_client(addr, &benches);
    let cold_wall = cold_start.elapsed();
    latencies.sort_by(f64::total_cmp);
    let cold = PhaseRecord {
        wall_ms: cold_wall.as_secs_f64() * 1e3,
        latencies_ms: latencies,
        from_cache,
        verdicts: vec![verdicts],
    };
    let after_cold = stats_totals(&mut observer);

    // Warm: N concurrent clients replay the same requests.
    let warm_start = Instant::now();
    let per_client: Vec<(Vec<f64>, String, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let benches = &benches;
                scope.spawn(move || run_client(addr, benches))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread finishes")).collect()
    });
    let warm_wall = warm_start.elapsed();
    let mut latencies = Vec::new();
    let mut warm_verdicts = Vec::new();
    let mut warm_served = 0u64;
    for (client_latencies, verdicts, served) in per_client {
        latencies.extend(client_latencies);
        warm_verdicts.push(verdicts);
        warm_served += served;
    }
    latencies.sort_by(f64::total_cmp);
    let warm = PhaseRecord {
        wall_ms: warm_wall.as_secs_f64() * 1e3,
        latencies_ms: latencies,
        from_cache: warm_served,
        verdicts: warm_verdicts,
    };
    let after_warm = stats_totals(&mut observer);

    let summary: DaemonSummary = daemon.shutdown_and_wait();
    DaemonReport {
        scale,
        workers,
        clients,
        distinct: distinct as u64,
        cold,
        warm,
        after_cold,
        after_warm,
        accepted: summary.accepted,
        completed: summary.completed,
        rejected: summary.rejected,
        cache_entries: summary.cache_entries as u64,
    }
}

/// Prints the summary, writes [`REPORT_PATH`], and reports gate failures.
pub fn report_and_write(report: &DaemonReport) -> Result<(), String> {
    report.print_summary();
    match report.write_json(REPORT_PATH) {
        Ok(()) => println!(
            "wrote {REPORT_PATH} ({} warm responses across {} clients)",
            report.warm.latencies_ms.len(),
            report.clients,
        ),
        Err(e) => eprintln!("failed to write {REPORT_PATH}: {e}"),
    }
    let failures = report.gate_failures();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> DaemonReport {
        DaemonReport {
            scale: Scale::Quick,
            workers: 2,
            clients: 4,
            distinct: 6,
            cold: PhaseRecord {
                wall_ms: 900.0,
                latencies_ms: vec![50.0; 6],
                from_cache: 2,
                verdicts: vec!["ssssss".into()],
            },
            warm: PhaseRecord {
                wall_ms: 60.0,
                latencies_ms: (1..=24).map(|i| i as f64).collect(),
                from_cache: 24,
                verdicts: vec!["ssssss".into(); 4],
            },
            after_cold: CacheTotals { hits: 2, misses: 4, stores: 4, evictions: 0 },
            after_warm: CacheTotals { hits: 26, misses: 4, stores: 4, evictions: 0 },
            accepted: 30,
            completed: 30,
            rejected: 0,
            cache_entries: 4,
        }
    }

    #[test]
    fn healthy_reports_pass_the_gates() {
        let report = sample_report();
        assert!(report.gate_failures().is_empty(), "{:?}", report.gate_failures());
        assert_eq!(report.warm_hits(), 24);
        assert_eq!(report.lost(), 0);
    }

    #[test]
    fn each_gate_trips() {
        let mut unserved = sample_report();
        unserved.warm.from_cache = 20;
        assert!(unserved.gate_failures().iter().any(|f| f.contains("served from the cache")));

        let mut missed = sample_report();
        missed.after_warm.misses += 2;
        assert!(missed.gate_failures().iter().any(|f| f.contains("100% cache hits")));

        let mut lost = sample_report();
        lost.completed -= 1;
        assert!(lost.gate_failures().iter().any(|f| f.contains("lost in the drain")));

        let mut bounced = sample_report();
        bounced.rejected = 3;
        assert!(bounced.gate_failures().iter().any(|f| f.contains("rejected at admission")));

        let mut miscounted = sample_report();
        miscounted.accepted += 1;
        miscounted.completed += 1;
        assert!(miscounted.gate_failures().iter().any(|f| f.contains("accounting mismatch")));

        let mut cold_fail = sample_report();
        cold_fail.cold.verdicts[0] = "ssssst".into();
        assert!(cold_fail.gate_failures().iter().any(|f| f.contains("not all successes")));

        let mut drift = sample_report();
        drift.warm.verdicts[2] = "sssssu".into();
        assert!(drift.gate_failures().iter().any(|f| f.contains("drifted")));
    }

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let phase = PhaseRecord {
            wall_ms: 0.0,
            latencies_ms: (1..=100).map(|i| i as f64).collect(),
            from_cache: 0,
            verdicts: Vec::new(),
        };
        assert_eq!(phase.percentile_ms(0.50), 50.0);
        assert_eq!(phase.percentile_ms(0.99), 99.0);
        assert_eq!(phase.percentile_ms(1.0), 100.0);
    }

    #[test]
    fn json_report_is_well_formed() {
        let json = sample_report().to_json();
        assert!(json.contains("\"gates_pass\": true"));
        assert!(json.contains("\"warm_served\": 24"));
        assert!(json.contains("\"lost\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
