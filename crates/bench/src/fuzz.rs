//! The differential HDL fuzzing firehose (`exp_fuzz`).
//!
//! Drives `lr_hdl::fuzz` at experiment scale: hundreds-to-thousands of seeded
//! mini-Verilog modules through the three-layer oracle —
//!
//! 1. the generated source parses and elaborates,
//! 2. `emit_verilog` of the elaborated program re-parses and re-elaborates to
//!    an interpretation-equivalent program (round-trip closure), and
//! 3. for a bounded prefix of seeds, the design is posed to the mapping engine
//!    and any successful mapping's `lr_ir` interpretation must agree with the
//!    elaborated spec over the cache-replay cycle window.
//!
//! `BENCH_fuzz.json` records the tallies. The acceptance gates are
//! **zero-tolerance on mismatches**: every seed must clear layers 1–2, and
//! every successful mapping must agree with its spec. Mapping *verdict*
//! tallies (success/unsat/timeout) are recorded for drift-watching but not
//! gated — they move with solver timing.

use std::time::Duration;

use lakeroad::{map_design, pipeline_depth, MapConfig, MapOutcome, Template};
use lr_arch::Architecture;
use lr_hdl::fuzz::{check_seed, interp_equivalent};

use crate::Scale;

/// Where the JSON report is written.
pub const REPORT_PATH: &str = "BENCH_fuzz.json";

/// Random environments per equivalence check.
const ENVS: usize = 32;
/// Last cycle checked by the round-trip oracle (covers every register depth
/// the generator can produce, with slack).
const ROUNDTRIP_CYCLES: u32 = 6;

/// The record `exp_fuzz` writes to [`REPORT_PATH`].
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Experiment scale.
    pub scale: Scale,
    /// Seeds pushed through the oracle (layer 1–2 population).
    pub seeds_run: usize,
    /// Seeds whose generated source parsed.
    pub parse_ok: usize,
    /// Seeds whose parsed module elaborated.
    pub elaborate_ok: usize,
    /// Seeds whose emitted Verilog round-tripped to an equivalent program.
    pub roundtrip_ok: usize,
    /// Seeds posed to the mapping engine (layer 3, bounded prefix).
    pub map_attempted: usize,
    /// Mapping successes (timing-dependent; recorded, not gated).
    pub map_success: usize,
    /// Unsat verdicts (timing-dependent; recorded, not gated).
    pub map_unsat: usize,
    /// Budget exhaustions (timing-dependent; recorded, not gated).
    pub map_timeout: usize,
    /// Mapping errors, e.g. sketch shape rejections (recorded, not gated).
    pub map_error: usize,
    /// Successful mappings whose implementation agreed with the spec.
    pub map_agree: usize,
    /// Every oracle failure, verbatim (each one fails the gate).
    pub mismatches: Vec<String>,
}

impl FuzzReport {
    fn new(scale: Scale) -> FuzzReport {
        FuzzReport {
            scale,
            seeds_run: 0,
            parse_ok: 0,
            elaborate_ok: 0,
            roundtrip_ok: 0,
            map_attempted: 0,
            map_success: 0,
            map_unsat: 0,
            map_timeout: 0,
            map_error: 0,
            map_agree: 0,
            mismatches: Vec::new(),
        }
    }

    /// The failed acceptance gates; empty when the firehose ran clean.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if self.parse_ok != self.seeds_run {
            failures.push(format!(
                "{} of {} generated modules failed to parse",
                self.seeds_run - self.parse_ok,
                self.seeds_run
            ));
        }
        if self.elaborate_ok != self.parse_ok {
            failures.push(format!(
                "{} parsed modules failed to elaborate",
                self.parse_ok - self.elaborate_ok
            ));
        }
        if self.roundtrip_ok != self.elaborate_ok {
            failures.push(format!(
                "{} elaborated designs failed round-trip closure",
                self.elaborate_ok - self.roundtrip_ok
            ));
        }
        if self.map_agree != self.map_success {
            failures.push(format!(
                "{} of {} successful mappings disagreed with their spec",
                self.map_success - self.map_agree,
                self.map_success
            ));
        }
        failures.extend(self.mismatches.iter().cloned());
        failures
    }

    /// Renders the record as a JSON document (dependency-free, stable for CI).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"seeds_run\": {},\n", self.seeds_run));
        out.push_str(&format!("  \"parse_ok\": {},\n", self.parse_ok));
        out.push_str(&format!("  \"elaborate_ok\": {},\n", self.elaborate_ok));
        out.push_str(&format!("  \"roundtrip_ok\": {},\n", self.roundtrip_ok));
        out.push_str(&format!("  \"map_attempted\": {},\n", self.map_attempted));
        out.push_str(&format!("  \"map_success\": {},\n", self.map_success));
        out.push_str(&format!("  \"map_unsat\": {},\n", self.map_unsat));
        out.push_str(&format!("  \"map_timeout\": {},\n", self.map_timeout));
        out.push_str(&format!("  \"map_error\": {},\n", self.map_error));
        out.push_str(&format!("  \"map_agree\": {},\n", self.map_agree));
        out.push_str(&format!("  \"mismatch_count\": {},\n", self.mismatches.len()));
        let escaped: Vec<String> =
            self.mismatches.iter().map(|m| format!("\"{}\"", json_escape(m))).collect();
        out.push_str(&format!("  \"mismatches\": [{}],\n", escaped.join(", ")));
        out.push_str(&format!("  \"gates_pass\": {}\n", self.gate_failures().is_empty()));
        out.push_str("}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\n-- Fuzz firehose: {} seeds --", self.seeds_run);
        println!(
            "  frontend  {} parse, {} elaborate, {} round-trip",
            self.parse_ok, self.elaborate_ok, self.roundtrip_ok
        );
        println!(
            "  mapping   {} posed: {} success ({} agree), {} unsat, {} timeout, {} error",
            self.map_attempted,
            self.map_success,
            self.map_agree,
            self.map_unsat,
            self.map_timeout,
            self.map_error
        );
        println!("  mismatches: {}", self.mismatches.len());
        for m in self.mismatches.iter().take(5) {
            println!("    {m}");
        }
        for failure in self.gate_failures() {
            println!("  GATE FAILED: {failure}");
        }
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// (seeds, layer-3 cap, per-mapping budget) for each scale. Quick keeps CI in
/// tens of seconds; the ISSUE floor is ≥ 200 seeds at `--quick`.
fn scale_params(scale: Scale) -> (u64, usize, Duration) {
    match scale {
        Scale::Quick => (200, 8, Duration::from_millis(1500)),
        Scale::Smoke => (1000, 24, Duration::from_secs(2)),
        Scale::Full => (5000, 96, Duration::from_secs(3)),
    }
}

/// Runs the firehose at `scale`.
pub fn run_fuzz_experiment(scale: Scale) -> FuzzReport {
    let (n_seeds, map_cap, budget) = scale_params(scale);
    let mut report = FuzzReport::new(scale);
    let archs = [Architecture::intel_cyclone10lp(), Architecture::lattice_ecp5()];
    let config = MapConfig { timeout: budget, ..MapConfig::default() };
    for seed in 0..n_seeds {
        let outcome = check_seed(seed, ENVS, ROUNDTRIP_CYCLES);
        report.seeds_run += 1;
        report.parse_ok += usize::from(outcome.parse_ok);
        report.elaborate_ok += usize::from(outcome.elaborate_ok);
        report.roundtrip_ok += usize::from(outcome.roundtrip_ok);
        if let Some(failure) = &outcome.failure {
            report.mismatches.push(failure.clone());
            continue;
        }
        // Layer 3: mapped-implementation agreement on a bounded prefix.
        if report.map_attempted >= map_cap {
            continue;
        }
        let Some(spec) = &outcome.spec else { continue };
        let arch = &archs[report.map_attempted % archs.len()];
        report.map_attempted += 1;
        match map_design(spec, Template::Dsp, arch, &config) {
            Ok(MapOutcome::Success(mapped)) => {
                report.map_success += 1;
                // The cache-replay convention: a mapped implementation owes
                // agreement from the spec's pipeline depth through the BMC
                // window (earlier cycles may differ while pipelines fill).
                let t = pipeline_depth(spec);
                match interp_equivalent(
                    spec,
                    &mapped.implementation,
                    seed,
                    ENVS,
                    t,
                    t + config.bmc_window,
                ) {
                    Ok(()) => report.map_agree += 1,
                    Err(e) => report.mismatches.push(format!(
                        "seed {seed} [{}]: mapped implementation disagrees with spec: {e}",
                        arch.name()
                    )),
                }
            }
            Ok(MapOutcome::Unsat { .. }) => report.map_unsat += 1,
            Ok(MapOutcome::Timeout { .. }) => report.map_timeout += 1,
            Err(_) => report.map_error += 1,
        }
    }
    report
}

/// Prints the summary, writes [`REPORT_PATH`], and reports gate failures.
///
/// # Errors
/// Returns the concatenated gate failures (or the I/O error text).
pub fn report_and_write(report: &FuzzReport) -> Result<(), String> {
    report.print_summary();
    report.write_json(REPORT_PATH).map_err(|e| format!("writing {REPORT_PATH}: {e}"))?;
    println!("\nwrote {REPORT_PATH}");
    let failures = report.gate_failures();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_report() -> FuzzReport {
        FuzzReport {
            scale: Scale::Quick,
            seeds_run: 10,
            parse_ok: 10,
            elaborate_ok: 10,
            roundtrip_ok: 10,
            map_attempted: 4,
            map_success: 2,
            map_unsat: 1,
            map_timeout: 1,
            map_error: 0,
            map_agree: 2,
            mismatches: Vec::new(),
        }
    }

    #[test]
    fn clean_runs_pass_the_gates() {
        let report = clean_report();
        assert!(report.gate_failures().is_empty());
        assert!(report.to_json().contains("\"gates_pass\": true"));
    }

    #[test]
    fn any_mismatch_fails_the_gate() {
        let mut report = clean_report();
        report.mismatches.push("seed 7: round-trip mismatch: ...".to_string());
        report.roundtrip_ok = 9;
        let failures = report.gate_failures();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(report.to_json().contains("\"gates_pass\": false"));
    }

    #[test]
    fn disagreeing_mappings_fail_the_gate() {
        let mut report = clean_report();
        report.map_agree = 1;
        assert_eq!(report.gate_failures().len(), 1);
    }

    #[test]
    fn json_escaping_keeps_the_report_parseable() {
        let mut report = clean_report();
        report.mismatches.push("quote \" backslash \\ newline \n done".to_string());
        let json = report.to_json();
        assert!(json.contains(r#"quote \" backslash \\ newline \n done"#));
    }

    #[test]
    fn a_tiny_live_run_is_clean() {
        // 12 seeds, no mapping (cap 0 via the prefix bound being irrelevant at
        // this size): exercises the real pipeline without solver time.
        let mut report = FuzzReport::new(Scale::Quick);
        for seed in 0..12 {
            let outcome = lr_hdl::fuzz::check_seed(seed, 8, 4);
            report.seeds_run += 1;
            report.parse_ok += usize::from(outcome.parse_ok);
            report.elaborate_ok += usize::from(outcome.elaborate_ok);
            report.roundtrip_ok += usize::from(outcome.roundtrip_ok);
            if let Some(f) = outcome.failure {
                report.mismatches.push(f);
            }
        }
        assert!(report.gate_failures().is_empty(), "{:?}", report.gate_failures());
    }
}
