//! The incremental-CEGIS comparison experiment: run every benchmark of the sweep
//! through synthesis twice — once with persistent solver state
//! (`SynthesisConfig::incremental`, the default) and once with the from-scratch
//! loop — and record per-benchmark wall time, iterations, and SAT conflicts in a
//! machine-readable `BENCH_cegis.json` so the performance trajectory of the
//! synthesis hot path is tracked run over run.
//!
//! Unlike the completeness sweep this uses a *single* solver configuration per run
//! (no portfolio): the point is to measure the CEGIS loop itself, not thread
//! scheduling noise.

use std::time::Instant;

use lakeroad::suite::Microbenchmark;
use lakeroad::{generate_sketch, pipeline_depth, Template};
use lr_arch::Architecture;
use lr_synth::{synthesize, SynthesisConfig, SynthesisOutcome, SynthesisTask};

use crate::Scale;

/// Where the machine-readable comparison record is written (repo-relative; CI
/// uploads this exact path as an artifact).
pub const REPORT_PATH: &str = "BENCH_cegis.json";

/// Prints the human-readable summary and writes [`REPORT_PATH`] — the shared tail
/// of the `exp_all` and `exp_cegis` drivers.
pub fn report_and_write(comparison: &CegisComparison) {
    comparison.print_summary();
    match comparison.write_json(REPORT_PATH) {
        Ok(()) => println!("wrote {REPORT_PATH} ({} runs)", comparison.runs.len()),
        Err(e) => eprintln!("failed to write {REPORT_PATH}: {e}"),
    }
}

/// One synthesis run's record (one benchmark in one mode).
#[derive(Debug, Clone)]
pub struct CegisRun {
    /// Architecture name.
    pub arch: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Whether solver state persisted across iterations.
    pub incremental: bool,
    /// `success` / `unsat` / `timeout`.
    pub verdict: &'static str,
    /// Measured wall-clock time.
    pub wall_ms: f64,
    /// CEGIS iterations performed.
    pub iterations: usize,
    /// SAT conflicts across all checks of the run.
    pub conflicts: u64,
    /// Example-equality constraints encoded (totalled over iterations).
    pub constraints_encoded: usize,
    /// Constraints re-encoded for already-seen examples (from-scratch overhead).
    pub constraints_reencoded: usize,
    /// Learnt clauses carried into synthesis checks (incremental reuse).
    pub learnt_clauses_reused: u64,
}

/// The full comparison: every benchmark in both modes.
#[derive(Debug, Clone)]
pub struct CegisComparison {
    /// The sweep scale the comparison ran at.
    pub scale: Scale,
    /// Per-run records, incremental and from-scratch interleaved per benchmark.
    pub runs: Vec<CegisRun>,
}

impl CegisComparison {
    /// Total wall time of one mode, in milliseconds.
    pub fn total_ms(&self, incremental: bool) -> f64 {
        self.runs.iter().filter(|r| r.incremental == incremental).map(|r| r.wall_ms).sum()
    }

    /// From-scratch total wall time divided by incremental total wall time.
    pub fn speedup(&self) -> f64 {
        let inc = self.total_ms(true);
        if inc <= 0.0 {
            return 1.0;
        }
        self.total_ms(false) / inc
    }

    /// Renders the comparison as a JSON document (no external dependencies; the
    /// format is stable for CI consumption).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"total_wall_ms_incremental\": {:.3},\n", self.total_ms(true)));
        out.push_str(&format!("  \"total_wall_ms_from_scratch\": {:.3},\n", self.total_ms(false)));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"arch\": \"{}\", \"benchmark\": \"{}\", \"incremental\": {}, \
                 \"verdict\": \"{}\", \"wall_ms\": {:.3}, \"iterations\": {}, \
                 \"conflicts\": {}, \"constraints_encoded\": {}, \
                 \"constraints_reencoded\": {}, \"learnt_clauses_reused\": {}}}{}\n",
                r.arch,
                r.benchmark,
                r.incremental,
                r.verdict,
                r.wall_ms,
                r.iterations,
                r.conflicts,
                r.constraints_encoded,
                r.constraints_reencoded,
                r.learnt_clauses_reused,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary table.
    pub fn print_summary(&self) {
        println!("\n-- Incremental CEGIS vs. from-scratch ({:?} scale) --", self.scale);
        println!(
            "  {:44} {:>12} {:>12} {:>8}",
            "benchmark", "incr (ms)", "scratch (ms)", "speedup"
        );
        let mut i = 0;
        while i + 1 < self.runs.len() {
            let (a, b) = (&self.runs[i], &self.runs[i + 1]);
            debug_assert!(a.incremental && !b.incremental);
            let speedup = if a.wall_ms > 0.0 { b.wall_ms / a.wall_ms } else { 1.0 };
            println!(
                "  {:44} {:>12.2} {:>12.2} {:>7.2}x",
                format!("{}/{}", a.arch, a.benchmark),
                a.wall_ms,
                b.wall_ms,
                speedup
            );
            i += 2;
        }
        println!(
            "  total: incremental {:.1} ms, from-scratch {:.1} ms, speedup {:.2}x",
            self.total_ms(true),
            self.total_ms(false),
            self.speedup()
        );
    }
}

fn run_one(
    arch: &Architecture,
    bench: &Microbenchmark,
    scale: Scale,
    incremental: bool,
) -> Option<CegisRun> {
    let spec = bench.build();
    let sketch = generate_sketch(Template::Dsp, arch, &spec).ok()?;
    let t = pipeline_depth(&spec);
    let task = SynthesisTask::over_window(&spec, &sketch, t, 2);
    let config = SynthesisConfig {
        timeout: Some(scale.timeout(arch.name())),
        incremental,
        ..SynthesisConfig::default()
    };
    let start = Instant::now();
    let outcome = synthesize(&task, &config).ok()?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let (verdict, stats) = match &outcome {
        SynthesisOutcome::Success(s) => ("success", &s.stats),
        SynthesisOutcome::Unsat { stats } => ("unsat", stats),
        SynthesisOutcome::Timeout { stats } => ("timeout", stats),
    };
    Some(CegisRun {
        arch: arch.name().to_string(),
        benchmark: bench.name.clone(),
        incremental,
        verdict,
        wall_ms,
        iterations: stats.iterations,
        conflicts: stats.conflicts,
        constraints_encoded: stats.constraints_encoded,
        constraints_reencoded: stats.constraints_reencoded,
        learnt_clauses_reused: stats.learnt_clauses_reused,
    })
}

/// Runs the comparison over the DSP sweep at `scale`: each benchmark once
/// incrementally, once from scratch.
pub fn run_cegis_comparison(scale: Scale) -> CegisComparison {
    let mut runs = Vec::new();
    for arch in Architecture::with_dsps() {
        for bench in scale.suite(arch.name()) {
            // Untimed warmup so neither timed mode pays first-touch costs
            // (allocator growth, page faults, branch history).
            let _ = run_one(&arch, &bench, scale, false);
            let pair: Vec<CegisRun> = [true, false]
                .into_iter()
                .filter_map(|mode| run_one(&arch, &bench, scale, mode))
                .collect();
            // Keep records paired so consumers can diff benchmark-by-benchmark.
            // A benchmark with no sketch yields zero runs (expected); one run
            // means a mode errored out, which must not vanish from the record
            // silently.
            match pair.len() {
                2 => runs.extend(pair),
                0 => {}
                _ => eprintln!(
                    "warning: dropping unpaired cegis runs for {}/{} (one mode failed)",
                    arch.name(),
                    bench.name
                ),
            }
        }
    }
    CegisComparison { scale, runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed_and_paired() {
        let comparison = CegisComparison {
            scale: Scale::Quick,
            runs: vec![
                CegisRun {
                    arch: "intel_cyclone10lp".into(),
                    benchmark: "mul_8b_0stage".into(),
                    incremental: true,
                    verdict: "success",
                    wall_ms: 12.5,
                    iterations: 2,
                    conflicts: 34,
                    constraints_encoded: 8,
                    constraints_reencoded: 0,
                    learnt_clauses_reused: 20,
                },
                CegisRun {
                    arch: "intel_cyclone10lp".into(),
                    benchmark: "mul_8b_0stage".into(),
                    incremental: false,
                    verdict: "success",
                    wall_ms: 25.0,
                    iterations: 2,
                    conflicts: 60,
                    constraints_encoded: 12,
                    constraints_reencoded: 4,
                    learnt_clauses_reused: 0,
                },
            ],
        };
        let json = comparison.to_json();
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"constraints_reencoded\": 4"));
        assert!(json.contains("\"incremental\": true"));
        assert!((comparison.total_ms(true) - 12.5).abs() < 1e-9);
        assert!((comparison.total_ms(false) - 25.0).abs() < 1e-9);
        // Exactly one trailing comma structure: valid JSON.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn comparison_runs_a_tiny_sweep() {
        // The Intel quick tier is a single benchmark; both modes must complete and
        // agree on the verdict.
        let arch = Architecture::intel_cyclone10lp();
        let bench = &Scale::Quick.suite(arch.name())[0];
        let inc = run_one(&arch, bench, Scale::Quick, true).unwrap();
        let scr = run_one(&arch, bench, Scale::Quick, false).unwrap();
        assert_eq!(inc.verdict, scr.verdict);
        assert_eq!(inc.constraints_reencoded, 0);
    }
}
