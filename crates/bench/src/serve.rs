//! The batch-serving experiment: measure what `lr_serve` buys — scheduler
//! scaling over a mixed workload and cache effectiveness over a repeated one —
//! and record it in a machine-readable `BENCH_serve.json`.
//!
//! Two sections:
//!
//! 1. **Scaling curve** — one mixed batch (fast mappable microbenchmarks plus
//!    budget-bound "grinder" jobs, the population a production queue carries)
//!    run cold at 1, 2, and 4 workers. Grinders are wall-clock-bound (they
//!    burn their budget and time out whatever CPU share they get), so
//!    overlapping them is a structural win that holds even on a single core;
//!    on a multicore machine the compute-bound jobs parallelize on top.
//! 2. **Cache effectiveness** — an all-mappable batch run cold and then
//!    repeated against the same cache. The warm run must be served entirely
//!    from the cache (100% hit rate, every replay verified against the spec by
//!    interpretation), with identical verdicts and resource counts.
//!
//! The report doubles as the CI gate: [`ServeReport::gate_failures`] is
//! non-empty when the warm hit rate drops below 100%, when the warm verdicts
//! drift from the cold ones, or when 4 workers are not faster than 1.

use std::sync::Arc;
use std::time::Duration;

use lakeroad::{MapConfig, MapOutcome};
use lr_arch::ArchName;
use lr_serve::{
    fuzz_jobs, grinder_jobs, netlist_jobs, run_batch, suite_jobs, BatchJob, BatchOptions,
    BatchReport, BatchRun, CacheSnapshot, JobResult, SynthCache,
};

use crate::Scale;

/// Where the machine-readable record is written (repo-relative; CI uploads this
/// exact path as an artifact, next to `BENCH_cegis.json` and `BENCH_egraph.json`).
pub const REPORT_PATH: &str = "BENCH_serve.json";

/// One point of the scaling curve: the mixed batch at one worker count.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// Worker threads.
    pub workers: usize,
    /// Batch wall-clock time.
    pub wall_ms: f64,
    /// Jobs per second.
    pub throughput: f64,
    /// Successful mappings.
    pub successes: usize,
    /// UNSAT verdicts.
    pub unsats: usize,
    /// Budget exhaustions (the grinder population).
    pub timeouts: usize,
    /// Unposeable jobs.
    pub errors: usize,
    /// Jobs that migrated between workers.
    pub steals: u64,
}

/// One phase of the cache experiment (cold or warm).
#[derive(Debug, Clone)]
pub struct CachePhase {
    /// `"cold"` or `"warm"`.
    pub label: &'static str,
    /// Batch wall-clock time.
    pub wall_ms: f64,
    /// Cache counter deltas during the phase.
    pub cache: CacheSnapshot,
    /// Verdicts served from the cache (each one a verified replay).
    pub served: usize,
    /// Per-job verdict letters in submission order (`s`/`u`/`t`/`e`), the
    /// compact form the cold/warm and 1-vs-N comparisons diff.
    pub verdicts: String,
    /// DSP/LE/register triples of successful jobs, in submission order.
    pub resources: Vec<(usize, usize, usize)>,
}

/// The full experiment record.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The sweep scale.
    pub scale: Scale,
    /// Jobs in the mixed scaling batch.
    pub scaling_jobs: usize,
    /// Section 1: the scaling curve, ascending worker counts.
    pub scaling: Vec<ScalingRun>,
    /// Section 2: cold then warm over the same cache.
    pub cold: CachePhase,
    /// See [`ServeReport::cold`].
    pub warm: CachePhase,
}

fn phase(label: &'static str, run: &BatchRun, cache: CacheSnapshot) -> CachePhase {
    let report = BatchReport::from_run(run, Some(cache));
    let verdicts: String = run
        .records
        .iter()
        .map(|r| match &r.result {
            JobResult::Finished(MapOutcome::Success(_)) => 's',
            JobResult::Finished(MapOutcome::Unsat { .. }) => 'u',
            JobResult::Finished(MapOutcome::Timeout { .. }) => 't',
            _ => 'e',
        })
        .collect();
    let resources = run
        .records
        .iter()
        .filter_map(|r| match &r.result {
            JobResult::Finished(MapOutcome::Success(m)) => {
                Some((m.resources.dsps, m.resources.logic_elements, m.resources.registers))
            }
            _ => None,
        })
        .collect();
    CachePhase {
        label,
        wall_ms: run.wall.as_secs_f64() * 1e3,
        cache,
        served: report.cache_served,
        verdicts,
        resources,
    }
}

impl ServeReport {
    /// Throughput at a worker count, if that point was measured.
    pub fn throughput_at(&self, workers: usize) -> Option<f64> {
        self.scaling.iter().find(|r| r.workers == workers).map(|r| r.throughput)
    }

    /// Cold-cache batch throughput speedup of 4 workers over 1.
    pub fn speedup_4v1(&self) -> Option<f64> {
        Some(self.throughput_at(4)? / self.throughput_at(1)?)
    }

    /// Warm-phase hit rate (fraction of lookups served).
    pub fn warm_hit_rate(&self) -> f64 {
        self.warm.cache.hit_rate()
    }

    /// The failed acceptance gates, empty when the experiment is healthy.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if self.warm.cache.misses > 0 || self.warm.cache.hits == 0 {
            failures.push(format!(
                "warm-cache hit rate is {:.1}% ({} hits / {} misses), expected 100%",
                100.0 * self.warm_hit_rate(),
                self.warm.cache.hits,
                self.warm.cache.misses,
            ));
        }
        if self.warm.served != self.warm.verdicts.len() {
            failures.push(format!(
                "only {} of {} warm verdicts were served from the cache",
                self.warm.served,
                self.warm.verdicts.len(),
            ));
        }
        if self.warm.cache.invalidations > 0 {
            failures.push(format!(
                "{} warm replays failed verification",
                self.warm.cache.invalidations
            ));
        }
        if self.warm.verdicts != self.cold.verdicts || self.warm.resources != self.cold.resources {
            failures.push(format!(
                "warm verdicts/resources drifted from cold ones ({} vs {})",
                self.warm.verdicts, self.cold.verdicts,
            ));
        }
        match self.speedup_4v1() {
            Some(speedup) if speedup < 1.0 => {
                failures.push(format!("4-worker sweep is slower than 1-worker ({speedup:.2}x)"))
            }
            Some(_) => {}
            None => failures.push("scaling curve is missing the 1- or 4-worker point".into()),
        }
        failures
    }

    /// Renders the record as a JSON document (dependency-free, like the other
    /// `BENCH_*.json` writers; the format is stable for CI consumption).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"scaling_jobs\": {},\n", self.scaling_jobs));
        out.push_str(&format!(
            "  \"speedup_4_workers_vs_1\": {:.3},\n",
            self.speedup_4v1().unwrap_or(0.0)
        ));
        out.push_str(&format!("  \"warm_hit_rate\": {:.4},\n", self.warm_hit_rate()));
        out.push_str(&format!("  \"gates_pass\": {},\n", self.gate_failures().is_empty()));
        out.push_str("  \"scaling\": [\n");
        for (i, r) in self.scaling.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workers\": {}, \"wall_ms\": {:.3}, \"throughput_jobs_per_s\": {:.3}, \
                 \"successes\": {}, \"unsats\": {}, \"timeouts\": {}, \"errors\": {}, \
                 \"steals\": {}}}{}\n",
                r.workers,
                r.wall_ms,
                r.throughput,
                r.successes,
                r.unsats,
                r.timeouts,
                r.errors,
                r.steals,
                if i + 1 < self.scaling.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"cache\": [\n");
        for (i, p) in [&self.cold, &self.warm].into_iter().enumerate() {
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"wall_ms\": {:.3}, \"hits\": {}, \"misses\": {}, \
                 \"stores\": {}, \"invalidations\": {}, \"served\": {}, \"verdicts\": \"{}\"}}{}\n",
                p.label,
                p.wall_ms,
                p.cache.hits,
                p.cache.misses,
                p.cache.stores,
                p.cache.invalidations,
                p.served,
                p.verdicts,
                if i == 0 { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\n-- Batch scaling: mixed workload of {} jobs, cold cache --", self.scaling_jobs);
        for r in &self.scaling {
            println!(
                "  {} worker{}  {:8.1} ms  {:6.2} jobs/s  ({} success / {} unsat / {} timeout / {} error, {} steals)",
                r.workers,
                if r.workers == 1 { " " } else { "s" },
                r.wall_ms,
                r.throughput,
                r.successes,
                r.unsats,
                r.timeouts,
                r.errors,
                r.steals,
            );
        }
        if let Some(speedup) = self.speedup_4v1() {
            println!("  4-worker speedup over 1 worker: {speedup:.2}x");
        }
        println!("\n-- Cache effectiveness: identical batch, cold then warm --");
        for p in [&self.cold, &self.warm] {
            println!(
                "  {:4}  {:8.1} ms  {} hits / {} misses, {} stores, {} served, verdicts {}",
                p.label,
                p.wall_ms,
                p.cache.hits,
                p.cache.misses,
                p.cache.stores,
                p.served,
                p.verdicts,
            );
        }
        println!("  warm hit rate: {:.1}%", 100.0 * self.warm_hit_rate());
        for failure in self.gate_failures() {
            println!("  GATE FAILED: {failure}");
        }
    }
}

/// The mixed batch of the scaling section: fast mappable suite jobs,
/// wall-clock-bound grinders, a slice of the HDL fuzz population (elaborated
/// mini-Verilog designs, mostly unmappable — they ride on the grinder budget
/// and roughen the queue the scheduler must overlap), and a slice of the
/// structural-netlist population (random AIGER resolved through the
/// `DesignSource` frontend, all Bitwise-mappable).
fn scaling_batch(scale: Scale) -> Vec<BatchJob> {
    let (suite_limit, grind_budget, fuzz_count, netlist_count) = match scale {
        Scale::Quick => (6, Duration::from_secs(2), 3, 2),
        Scale::Smoke => (12, Duration::from_secs(3), 6, 4),
        Scale::Full => (24, Duration::from_secs(5), 12, 8),
    };
    let mut jobs = suite_jobs(ArchName::IntelCyclone10Lp, suite_limit);
    jobs.extend(grinder_jobs(grind_budget));
    jobs.extend(fuzz_jobs(0xF1_5E5E, fuzz_count, Some(grind_budget)));
    jobs.extend(netlist_jobs(0xA1_6E7, netlist_count, Some(grind_budget)));
    jobs
}

/// The all-mappable batch of the cache section.
fn cache_batch(scale: Scale) -> Vec<BatchJob> {
    let suite_limit = match scale {
        Scale::Quick => 6,
        Scale::Smoke => 18,
        Scale::Full => 36,
    };
    let mut jobs = suite_jobs(ArchName::IntelCyclone10Lp, suite_limit);
    jobs.extend(suite_jobs(ArchName::LatticeEcp5, suite_limit));
    jobs
}

fn options_with_cache(workers: usize, timeout: Duration, cache: &Arc<SynthCache>) -> BatchOptions {
    let shared: Arc<dyn lakeroad::MapCache> = Arc::<SynthCache>::clone(cache);
    let map = MapConfig::default().with_timeout(timeout).with_cache(shared);
    BatchOptions::new(workers, map)
}

/// Runs the full experiment at `scale`.
pub fn run_serve_experiment(scale: Scale) -> ServeReport {
    let timeout = scale.timeout(ArchName::IntelCyclone10Lp);

    // Section 1: scaling. Every worker count gets a fresh (cold) cache so runs
    // are independent; within one run the cache still collapses the suite's
    // canonical twins, exactly as a production cold start would.
    let jobs = scaling_batch(scale);
    let mut scaling = Vec::new();
    for workers in [1usize, 2, 4] {
        let cache = Arc::new(SynthCache::new());
        let run = run_batch(&jobs, &options_with_cache(workers, timeout, &cache));
        let report = BatchReport::from_run(&run, Some(cache.snapshot()));
        scaling.push(ScalingRun {
            workers,
            wall_ms: run.wall.as_secs_f64() * 1e3,
            throughput: report.throughput(),
            successes: report.successes,
            unsats: report.unsats,
            timeouts: report.timeouts,
            errors: report.errors,
            steals: run.steals,
        });
    }

    // Section 2: cache. One cache across both phases; the second, identical
    // batch must be served entirely warm.
    let jobs = cache_batch(scale);
    let cache = Arc::new(SynthCache::new());
    let before = cache.snapshot();
    let cold_run = run_batch(&jobs, &options_with_cache(2, timeout, &cache));
    let after_cold = cache.snapshot();
    let warm_run = run_batch(&jobs, &options_with_cache(2, timeout, &cache));
    let after_warm = cache.snapshot();

    ServeReport {
        scale,
        scaling_jobs: scaling_batch(scale).len(),
        scaling,
        cold: phase("cold", &cold_run, before.delta(&after_cold)),
        warm: phase("warm", &warm_run, after_cold.delta(&after_warm)),
    }
}

/// Prints the summary, writes [`REPORT_PATH`], and reports gate failures.
pub fn report_and_write(report: &ServeReport) -> Result<(), String> {
    report.print_summary();
    match report.write_json(REPORT_PATH) {
        Ok(()) => println!(
            "wrote {REPORT_PATH} ({} scaling points, {} cache-phase jobs)",
            report.scaling.len(),
            report.cold.verdicts.len(),
        ),
        Err(e) => eprintln!("failed to write {REPORT_PATH}: {e}"),
    }
    let failures = report.gate_failures();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ServeReport {
        let snap = |hits, misses, stores, invalidations| CacheSnapshot {
            hits,
            misses,
            stores,
            invalidations,
            evictions: 0,
        };
        ServeReport {
            scale: Scale::Quick,
            scaling_jobs: 12,
            scaling: vec![
                ScalingRun {
                    workers: 1,
                    wall_ms: 14_000.0,
                    throughput: 12.0 / 14.0,
                    successes: 6,
                    unsats: 0,
                    timeouts: 6,
                    errors: 0,
                    steals: 0,
                },
                ScalingRun {
                    workers: 4,
                    wall_ms: 5_000.0,
                    throughput: 12.0 / 5.0,
                    successes: 6,
                    unsats: 0,
                    timeouts: 6,
                    errors: 0,
                    steals: 3,
                },
            ],
            cold: CachePhase {
                label: "cold",
                wall_ms: 900.0,
                cache: snap(3, 9, 9, 0),
                served: 3,
                verdicts: "ssssssssssss".into(),
                resources: vec![(1, 0, 0); 12],
            },
            warm: CachePhase {
                label: "warm",
                wall_ms: 40.0,
                cache: snap(12, 0, 0, 0),
                served: 12,
                verdicts: "ssssssssssss".into(),
                resources: vec![(1, 0, 0); 12],
            },
        }
    }

    #[test]
    fn healthy_reports_pass_the_gates() {
        let report = sample_report();
        assert!(report.gate_failures().is_empty(), "{:?}", report.gate_failures());
        assert!((report.speedup_4v1().unwrap() - 2.8).abs() < 0.01);
        assert_eq!(report.warm_hit_rate(), 1.0);
    }

    #[test]
    fn each_gate_trips() {
        let mut miss = sample_report();
        miss.warm.cache.misses = 2;
        assert!(miss.gate_failures().iter().any(|f| f.contains("hit rate")));

        let mut unserved = sample_report();
        unserved.warm.served = 10;
        assert!(unserved.gate_failures().iter().any(|f| f.contains("served from the cache")));

        let mut stale = sample_report();
        stale.warm.cache.invalidations = 1;
        assert!(stale.gate_failures().iter().any(|f| f.contains("failed verification")));

        let mut drift = sample_report();
        drift.warm.verdicts = "sssssssssssu".into();
        assert!(drift.gate_failures().iter().any(|f| f.contains("drifted")));

        let mut slow = sample_report();
        slow.scaling[1].throughput = slow.scaling[0].throughput * 0.5;
        assert!(slow.gate_failures().iter().any(|f| f.contains("slower")));
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains("\"gates_pass\": true"));
        assert!(json.contains("\"warm_hit_rate\": 1.0000"));
        assert!(json.contains("\"workers\": 4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
