//! Holes, hole domains, sublanguage classification, and hole filling.
//!
//! A sketch Ψ = (ψ, h) of §3.1 is represented as a [`crate::Prog`] whose `Hole` nodes
//! each carry their own [`HoleDomain`] (the map `h`). Filling holes with concrete
//! values produces an ℒstruct program, which is the paper's
//! `Ψ[■x₁ ↦ n₁, …]` substitution.

use std::collections::BTreeMap;

use lr_bv::BitVec;

use crate::{Node, Prog};

/// The set of hole-free nodes allowed to fill a hole (the map `h` of §3.1).
///
/// In practice Lakeroad's holes stand for primitive ports and parameters, so the
/// domains are either "any constant of the hole's width" or an explicit choice list
/// (e.g. a parameter that must be one of `"AD"`, `"A"`, … encoded as small integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HoleDomain {
    /// Any constant bitvector of the hole's width.
    AnyConstant,
    /// One of an explicit list of constants.
    Choice(Vec<BitVec>),
    /// Any constant whose value is strictly less than the bound (used for mode
    /// fields whose high encodings are reserved/invalid).
    LessThan(BitVec),
}

/// A description of one hole found in a program.
#[derive(Debug, Clone, PartialEq)]
pub struct HoleInfo {
    /// The hole's name.
    pub name: String,
    /// The hole's width.
    pub width: u32,
    /// The allowed values.
    pub domain: HoleDomain,
}

impl Prog {
    /// Collects all holes in the program, including inside primitive *bindings* at
    /// this level. Holes never occur inside primitive semantics (those are ℒbeh).
    pub fn holes(&self) -> Vec<HoleInfo> {
        let mut out = Vec::new();
        for node in self.nodes.values() {
            if let Node::Hole { name, width, domain } = node {
                out.push(HoleInfo { name: name.clone(), width: *width, domain: domain.clone() });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Whether the program contains any holes (making it a sketch).
    pub fn has_holes(&self) -> bool {
        self.nodes.values().any(|n| matches!(n, Node::Hole { .. }))
    }

    /// Whether the program is in the behavioral fragment ℒbeh (no primitives, no
    /// holes).
    pub fn is_behavioral(&self) -> bool {
        self.nodes.values().all(|n| !matches!(n, Node::Prim(_) | Node::Hole { .. }))
    }

    /// Whether the program is in the structural fragment ℒstruct: no operator nodes
    /// and no holes at this level (primitive semantics sub-programs are behavioral by
    /// construction). Registers are permitted at the top level as an extension; the
    /// structural Verilog emitter lowers them to flip-flop always-blocks.
    pub fn is_structural(&self) -> bool {
        self.nodes.values().all(|n| match n {
            Node::Op(op, _) => matches!(
                op,
                // Pure wiring operators are allowed in structural programs: they
                // lower to Verilog concatenations/slices, not to logic.
                lr_smt::BvOp::Concat
                    | lr_smt::BvOp::Extract { .. }
                    | lr_smt::BvOp::ZeroExt { .. }
                    | lr_smt::BvOp::SignExt { .. }
            ),
            Node::Hole { .. } => false,
            _ => true,
        })
    }

    /// Whether the program is in the sketch fragment ℒsketch: like ℒstruct but holes
    /// are allowed.
    pub fn is_sketch(&self) -> bool {
        self.nodes.values().all(|n| match n {
            Node::Op(op, _) => matches!(
                op,
                lr_smt::BvOp::Concat
                    | lr_smt::BvOp::Extract { .. }
                    | lr_smt::BvOp::ZeroExt { .. }
                    | lr_smt::BvOp::SignExt { .. }
            ),
            _ => true,
        })
    }

    /// Fills holes with constant values, producing a hole-free program
    /// (`Ψ[■x₁ ↦ n₁, …]` in the paper's notation).
    ///
    /// # Errors
    /// Returns the name of the first hole that has no assignment, an assignment of
    /// the wrong width, or an assignment outside its domain.
    pub fn fill_holes(&self, assignment: &BTreeMap<String, BitVec>) -> Result<Prog, String> {
        let mut out = self.clone();
        for node in out.nodes.values_mut() {
            if let Node::Hole { name, width, domain } = node {
                let value = assignment
                    .get(name)
                    .ok_or_else(|| format!("no assignment for hole `{name}`"))?;
                if value.width() != *width {
                    return Err(format!(
                        "hole `{name}` expects width {width}, got {}",
                        value.width()
                    ));
                }
                if !domain.contains(value) {
                    return Err(format!("value {value} is outside the domain of hole `{name}`"));
                }
                *node = Node::BV(value.clone());
            }
        }
        Ok(out)
    }
}

impl HoleDomain {
    /// Whether a value is allowed by this domain.
    pub fn contains(&self, value: &BitVec) -> bool {
        match self {
            HoleDomain::AnyConstant => true,
            HoleDomain::Choice(choices) => choices.contains(value),
            HoleDomain::LessThan(bound) => value.ult(bound),
        }
    }

    /// The number of allowed values, if finite and cheaply countable.
    pub fn size_hint(&self, width: u32) -> Option<u64> {
        match self {
            HoleDomain::AnyConstant => {
                if width >= 64 {
                    None
                } else {
                    Some(1u64 << width)
                }
            }
            HoleDomain::Choice(choices) => Some(choices.len() as u64),
            HoleDomain::LessThan(bound) => bound.to_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BvOp, ProgBuilder};

    #[test]
    fn hole_collection_and_filling() {
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let h = b.hole("k", 8, HoleDomain::AnyConstant);
        let sum = b.op2(BvOp::Add, a, h);
        let prog = b.finish(sum);
        assert!(prog.has_holes());
        let holes = prog.holes();
        assert_eq!(holes.len(), 1);
        assert_eq!(holes[0].name, "k");

        let mut asg = BTreeMap::new();
        asg.insert("k".to_string(), BitVec::from_u64(7, 8));
        let filled = prog.fill_holes(&asg).unwrap();
        assert!(!filled.has_holes());
        assert!(filled.is_behavioral());
    }

    #[test]
    fn fill_holes_rejects_bad_assignments() {
        let mut b = ProgBuilder::new("sketch");
        let h = b.hole("k", 8, HoleDomain::Choice(vec![BitVec::from_u64(1, 8)]));
        let prog = b.finish(h);
        assert!(prog.fill_holes(&BTreeMap::new()).is_err());

        let mut wrong_width = BTreeMap::new();
        wrong_width.insert("k".to_string(), BitVec::from_u64(1, 4));
        assert!(prog.fill_holes(&wrong_width).is_err());

        let mut outside = BTreeMap::new();
        outside.insert("k".to_string(), BitVec::from_u64(3, 8));
        assert!(prog.fill_holes(&outside).is_err());

        let mut ok = BTreeMap::new();
        ok.insert("k".to_string(), BitVec::from_u64(1, 8));
        assert!(prog.fill_holes(&ok).is_ok());
    }

    #[test]
    fn domain_membership() {
        assert!(HoleDomain::AnyConstant.contains(&BitVec::from_u64(99, 8)));
        let choice = HoleDomain::Choice(vec![BitVec::from_u64(1, 4), BitVec::from_u64(2, 4)]);
        assert!(choice.contains(&BitVec::from_u64(2, 4)));
        assert!(!choice.contains(&BitVec::from_u64(3, 4)));
        let lt = HoleDomain::LessThan(BitVec::from_u64(4, 4));
        assert!(lt.contains(&BitVec::from_u64(3, 4)));
        assert!(!lt.contains(&BitVec::from_u64(4, 4)));
    }

    #[test]
    fn domain_size_hints() {
        assert_eq!(HoleDomain::AnyConstant.size_hint(3), Some(8));
        assert_eq!(HoleDomain::AnyConstant.size_hint(80), None);
        let choice = HoleDomain::Choice(vec![BitVec::from_u64(1, 4)]);
        assert_eq!(choice.size_hint(4), Some(1));
        assert_eq!(HoleDomain::LessThan(BitVec::from_u64(9, 8)).size_hint(8), Some(9));
    }

    #[test]
    fn sublanguage_classification() {
        // Behavioral: ops and regs, no prims/holes.
        let mut b = ProgBuilder::new("beh");
        let a = b.input("a", 4);
        let r = b.reg(a, 4);
        let beh = b.finish(r);
        assert!(beh.is_behavioral());
        assert!(!beh.has_holes());

        // Sketch: a hole makes it non-behavioral but still a sketch.
        let mut b = ProgBuilder::new("sk");
        let h = b.hole("h", 4, HoleDomain::AnyConstant);
        let sk = b.finish(h);
        assert!(!sk.is_behavioral());
        assert!(sk.is_sketch());
        assert!(!sk.is_structural());

        // Structural-with-logic-op is not structural.
        let mut b = ProgBuilder::new("st");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let sum = b.op2(BvOp::Add, x, y);
        let st = b.finish(sum);
        assert!(!st.is_structural());

        // Wiring ops are allowed in structural programs.
        let mut b = ProgBuilder::new("wire");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let cat = b.op2(BvOp::Concat, x, y);
        let st = b.finish(cat);
        assert!(st.is_structural());
        assert!(st.is_sketch());
    }
}
