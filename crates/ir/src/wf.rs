//! Well-formedness checking for ℒlr programs (conditions W1–W6 of §3.2.1).
//!
//! The combinational-loop check (W6 / Property 1) constructs the constraint graph
//! implied by the monotonicity conditions and looks for a cycle; a topological order
//! doubles as the witness function `w`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{Node, NodeId, Prog};

/// A violation of one of the well-formedness conditions W1–W6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormednessError {
    /// W1: the root id is not a node of the program.
    RootMissing(NodeId),
    /// W2: an id occurs more than once across the program and its sub-programs.
    DuplicateId(NodeId),
    /// W3: a node references an id that is not a node of the same program level.
    DanglingInput {
        /// The node whose input is missing.
        node: NodeId,
        /// The missing input id.
        input: NodeId,
    },
    /// W5: a primitive's binding map does not bind exactly the free variables of its
    /// semantics program.
    BindingMismatch {
        /// The primitive node.
        node: NodeId,
        /// Variables that are free in the semantics but unbound.
        missing: Vec<String>,
        /// Bindings that do not correspond to any free variable.
        extra: Vec<String>,
    },
    /// W6: the program contains a combinational loop.
    CombinationalLoop {
        /// A node participating in the loop.
        node: NodeId,
    },
    /// An operator node has the wrong number of arguments.
    BadArity {
        /// The offending node.
        node: NodeId,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
    },
}

impl fmt::Display for WellFormednessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormednessError::RootMissing(id) => write!(f, "root {id} is not a node (W1)"),
            WellFormednessError::DuplicateId(id) => write!(f, "id {id} is not unique (W2)"),
            WellFormednessError::DanglingInput { node, input } => {
                write!(f, "node {node} references missing node {input} (W3)")
            }
            WellFormednessError::BindingMismatch { node, missing, extra } => write!(
                f,
                "primitive {node} bindings mismatch: missing {missing:?}, extra {extra:?} (W5)"
            ),
            WellFormednessError::CombinationalLoop { node } => {
                write!(f, "combinational loop through node {node} (W6)")
            }
            WellFormednessError::BadArity { node, expected, found } => {
                write!(f, "node {node} has {found} arguments, expected {expected}")
            }
        }
    }
}

impl std::error::Error for WellFormednessError {}

impl Prog {
    /// Checks conditions W1–W6. Returns the witness function `w` of Property 1 (a
    /// topological level per node id, across all nesting levels) on success.
    pub fn well_formedness_witness(&self) -> Result<BTreeMap<NodeId, u32>, WellFormednessError> {
        // W1.
        if !self.nodes.contains_key(&self.root) {
            return Err(WellFormednessError::RootMissing(self.root));
        }
        // W2: ids unique across nesting.
        let all = self.all_ids();
        let mut seen = BTreeSet::new();
        for id in &all {
            if !seen.insert(*id) {
                return Err(WellFormednessError::DuplicateId(*id));
            }
        }
        // W3, W4, W5 and arity, recursively; also build the constraint graph edges
        // for W6 (edge u -> v means w(v) > w(u)).
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        self.collect_constraints(&mut edges)?;

        // W6: cycle detection / longest-path levels via Kahn's algorithm.
        let mut indegree: BTreeMap<NodeId, usize> = all.iter().map(|&id| (id, 0)).collect();
        let mut succs: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &(u, v) in &edges {
            *indegree.get_mut(&v).expect("edge target exists") += 1;
            succs.entry(u).or_default().push(v);
        }
        let mut level: BTreeMap<NodeId, u32> = all.iter().map(|&id| (id, 0)).collect();
        let mut queue: Vec<NodeId> =
            indegree.iter().filter(|(_, &d)| d == 0).map(|(&id, _)| id).collect();
        let mut processed = 0usize;
        while let Some(id) = queue.pop() {
            processed += 1;
            let l = level[&id];
            if let Some(ss) = succs.get(&id) {
                for &s in ss.clone().iter() {
                    let sl = level.get_mut(&s).expect("node exists");
                    *sl = (*sl).max(l + 1);
                    let d = indegree.get_mut(&s).expect("node exists");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(s);
                    }
                }
            }
        }
        if processed != all.len() {
            let culprit = indegree
                .iter()
                .find(|(_, &d)| d > 0)
                .map(|(&id, _)| id)
                .expect("some node remains in a cycle");
            return Err(WellFormednessError::CombinationalLoop { node: culprit });
        }
        Ok(level)
    }

    /// Checks conditions W1–W6, discarding the witness.
    pub fn well_formed(&self) -> Result<(), WellFormednessError> {
        self.well_formedness_witness().map(|_| ())
    }

    fn collect_constraints(
        &self,
        edges: &mut Vec<(NodeId, NodeId)>,
    ) -> Result<(), WellFormednessError> {
        for (&id, node) in &self.nodes {
            match node {
                Node::Op(op, args) => {
                    if args.len() != op.arity() {
                        return Err(WellFormednessError::BadArity {
                            node: id,
                            expected: op.arity(),
                            found: args.len(),
                        });
                    }
                    for &a in args {
                        if !self.nodes.contains_key(&a) {
                            return Err(WellFormednessError::DanglingInput { node: id, input: a });
                        }
                        edges.push((a, id));
                    }
                }
                Node::Reg { data, .. } => {
                    if !self.nodes.contains_key(data) {
                        return Err(WellFormednessError::DanglingInput { node: id, input: *data });
                    }
                    // Rule 1: registers impose no ordering constraint on their input
                    // (they read it at the previous timestep).
                }
                Node::Prim(p) => {
                    // W3 for the binding values.
                    for &bound in p.bindings.values() {
                        if !self.nodes.contains_key(&bound) {
                            return Err(WellFormednessError::DanglingInput {
                                node: id,
                                input: bound,
                            });
                        }
                    }
                    // W4: the sub-program must be well-formed locally (its own
                    // structure); its constraint edges join the global graph.
                    // W5: bindings == free vars of the semantics.
                    let fv: BTreeSet<String> =
                        p.semantics.free_vars().into_iter().map(|(n, _)| n).collect();
                    let bound: BTreeSet<String> = p.bindings.keys().cloned().collect();
                    if fv != bound {
                        return Err(WellFormednessError::BindingMismatch {
                            node: id,
                            missing: fv.difference(&bound).cloned().collect(),
                            extra: bound.difference(&fv).cloned().collect(),
                        });
                    }
                    if !p.semantics.nodes.contains_key(&p.semantics.root) {
                        return Err(WellFormednessError::RootMissing(p.semantics.root));
                    }
                    // Rule 2: w(prim) > w(sub-program root).
                    edges.push((p.semantics.root, id));
                    // Rule 3: for Var x nodes inside the sub-program, w(var) > w(bs[x]).
                    for (&sub_id, sub_node) in &p.semantics.nodes {
                        if let Node::Var { name, .. } = sub_node {
                            if let Some(&outer) = p.bindings.get(name) {
                                edges.push((outer, sub_id));
                            }
                        }
                    }
                    // Recurse for the sub-program's own edges and checks.
                    p.semantics.collect_constraints(edges)?;
                }
                Node::BV(_) | Node::Var { .. } | Node::Hole { .. } => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BvOp, HoleDomain, PrimInstance, ProgBuilder};
    use lr_bv::BitVec;
    use std::collections::BTreeMap as Map;

    #[test]
    fn simple_program_is_well_formed() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let c = b.constant_u64(1, 8);
        let s = b.op2(BvOp::Add, a, c);
        let prog = b.finish(s);
        let witness = prog.well_formedness_witness().unwrap();
        // Monotonicity: the sum is strictly above both inputs.
        assert!(witness[&s] > witness[&a]);
        assert!(witness[&s] > witness[&c]);
    }

    #[test]
    fn registers_break_cycles() {
        // A counter: r = r + 1 (through a register) is fine.
        let mut b = ProgBuilder::new("counter");
        let one = b.constant_u64(1, 8);
        // Build the register first with a placeholder data input, then patch via a
        // hand-constructed program is awkward with the builder; instead build the
        // cycle manually.
        let _ = one;
        use crate::{Node, Prog};
        let mut nodes = Map::new();
        nodes.insert(crate::NodeId(0), Node::BV(BitVec::from_u64(1, 8)));
        nodes.insert(
            crate::NodeId(1),
            Node::Op(BvOp::Add, vec![crate::NodeId(0), crate::NodeId(2)]),
        );
        nodes
            .insert(crate::NodeId(2), Node::Reg { data: crate::NodeId(1), init: BitVec::zeros(8) });
        let prog = Prog { name: "counter".into(), root: crate::NodeId(2), nodes, inputs: vec![] };
        assert!(prog.well_formed().is_ok());
    }

    #[test]
    fn combinational_loop_is_rejected() {
        use crate::{Node, Prog};
        let mut nodes = Map::new();
        // n0 = n1 & n1; n1 = n0 | n0  -- a purely combinational loop.
        nodes.insert(
            crate::NodeId(0),
            Node::Op(BvOp::And, vec![crate::NodeId(1), crate::NodeId(1)]),
        );
        nodes
            .insert(crate::NodeId(1), Node::Op(BvOp::Or, vec![crate::NodeId(0), crate::NodeId(0)]));
        let prog = Prog { name: "loop".into(), root: crate::NodeId(0), nodes, inputs: vec![] };
        assert!(matches!(prog.well_formed(), Err(WellFormednessError::CombinationalLoop { .. })));
    }

    #[test]
    fn dangling_input_is_rejected() {
        use crate::{Node, Prog};
        let mut nodes = Map::new();
        nodes.insert(crate::NodeId(0), Node::Op(BvOp::Not, vec![crate::NodeId(7)]));
        let prog = Prog { name: "bad".into(), root: crate::NodeId(0), nodes, inputs: vec![] };
        assert!(matches!(prog.well_formed(), Err(WellFormednessError::DanglingInput { .. })));
    }

    #[test]
    fn missing_root_is_rejected() {
        use crate::{Node, Prog};
        let mut nodes = Map::new();
        nodes.insert(crate::NodeId(0), Node::BV(BitVec::zeros(1)));
        let prog = Prog { name: "bad".into(), root: crate::NodeId(3), nodes, inputs: vec![] };
        assert_eq!(prog.well_formed(), Err(WellFormednessError::RootMissing(crate::NodeId(3))));
    }

    #[test]
    fn bad_arity_is_rejected() {
        use crate::{Node, Prog};
        let mut nodes = Map::new();
        nodes.insert(crate::NodeId(0), Node::BV(BitVec::zeros(4)));
        nodes.insert(crate::NodeId(1), Node::Op(BvOp::Add, vec![crate::NodeId(0)]));
        let prog = Prog { name: "bad".into(), root: crate::NodeId(1), nodes, inputs: vec![] };
        assert!(matches!(prog.well_formed(), Err(WellFormednessError::BadArity { .. })));
    }

    fn buffer_prim(b: &mut ProgBuilder, driven_by: crate::NodeId, width: u32) -> PrimInstance {
        let mut inner = ProgBuilder::with_base_id("buf_sem", b.peek_next_id() + 500);
        let x = inner.var("x", width);
        let sem = inner.finish(x);
        PrimInstance {
            module: "BUF".into(),
            interface: "BUF".into(),
            bindings: [("x".to_string(), driven_by)].into_iter().collect(),
            semantics: sem,
            param_names: vec![],
            output_port: "o".into(),
        }
    }

    #[test]
    fn primitive_bindings_checked() {
        // Correct binding.
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 4);
        let prim = buffer_prim(&mut b, a, 4);
        let p = b.prim(prim);
        let prog = b.finish(p);
        assert!(prog.well_formed().is_ok());

        // Extra binding name.
        let mut b = ProgBuilder::new("p2");
        let a = b.input("a", 4);
        let mut prim = buffer_prim(&mut b, a, 4);
        prim.bindings.insert("ghost".to_string(), a);
        let p = b.prim(prim);
        let prog = b.finish(p);
        assert!(matches!(prog.well_formed(), Err(WellFormednessError::BindingMismatch { .. })));

        // Missing binding.
        let mut b = ProgBuilder::new("p3");
        let a = b.input("a", 4);
        let mut prim = buffer_prim(&mut b, a, 4);
        prim.bindings.clear();
        let p = b.prim(prim);
        let prog = b.finish(p);
        assert!(matches!(prog.well_formed(), Err(WellFormednessError::BindingMismatch { .. })));
    }

    #[test]
    fn duplicate_ids_across_nesting_are_rejected() {
        // Build a primitive whose semantics reuses the outer program's ids.
        let mut b = ProgBuilder::new("outer");
        let a = b.input("a", 4);
        let mut inner = ProgBuilder::new("inner"); // starts ids at 0 -> collides
        let x = inner.var("x", 4);
        let sem = inner.finish(x);
        let prim = PrimInstance {
            module: "BUF".into(),
            interface: "BUF".into(),
            bindings: [("x".to_string(), a)].into_iter().collect(),
            semantics: sem,
            param_names: vec![],
            output_port: "o".into(),
        };
        let p = b.prim(prim);
        let prog = b.finish(p);
        assert!(matches!(prog.well_formed(), Err(WellFormednessError::DuplicateId(_))));
    }

    #[test]
    fn sketches_with_holes_are_well_formed() {
        let mut b = ProgBuilder::new("sk");
        let a = b.input("a", 4);
        let h = b.hole("h", 4, HoleDomain::AnyConstant);
        let s = b.op2(BvOp::Add, a, h);
        let prog = b.finish(s);
        assert!(prog.well_formed().is_ok());
    }

    #[test]
    fn witness_respects_prim_rules() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 4);
        let prim = buffer_prim(&mut b, a, 4);
        let sem_root = prim.semantics.root();
        let p = b.prim(prim);
        let prog = b.finish(p);
        let w = prog.well_formedness_witness().unwrap();
        // Rule 2: the primitive node is above its semantics root.
        assert!(w[&p] > w[&sem_root]);
        // Rule 3: the semantics' Var node is above the binding source.
        assert!(w[&sem_root] > w[&a]);
    }
}
