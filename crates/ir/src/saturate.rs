//! Equality-saturation canonicalization of ℒlr programs.
//!
//! [`Prog::saturated`] runs the combinational regions of a program — the root cone
//! plus the cone feeding each register and each primitive binding — through the
//! shared `lr_egraph` rule set and extracts the minimum-size equivalent, leaving
//! registers, primitives, and holes as opaque boundaries. Where
//! [`Prog::simplified`] (one-shot constant folding) runs *after* synthesis to
//! clean up selection logic, `saturated` runs *before* sketch specialization: it
//! canonicalizes the behavioral spec so that algebraically-disguised forms
//! (mirrored subtractions, negate-path multiplies, re-associable constant chains)
//! reach the synthesis engine in one normal form.
//!
//! [`Prog::structural_evidence`] scans the canonical form for the operator
//! families the sketch templates target — the "rule-driven sketch guidance" input
//! that `lr_sketch::guidance` ranks templates with.

use std::collections::{BTreeMap, HashMap};

use lr_egraph::{
    saturate, EClassId, EGraph, ENode, Extractor, Limits, NodeCount, RecNode, SaturationStats,
};
use lr_smt::BvOp;

use crate::{Node, NodeId, Prog};

/// The result of a saturation pass, with the counters the benchmarks record.
#[derive(Debug, Clone)]
pub struct SaturateOutcome {
    /// The canonicalized, semantically-equivalent program.
    pub prog: Prog,
    /// Saturation counters.
    pub stats: SaturationStats,
    /// Number of combinational cones saturated (root, register data, primitive
    /// bindings).
    pub cones: usize,
    /// Total nodes across the extracted cone expressions.
    pub extracted_nodes: usize,
}

/// Operator families present in a program's *canonical* (saturated) form — the
/// structural evidence sketch guidance ranks templates with. Computed on the
/// saturated program so that, e.g., a multiply-by-one or a constant-condition mux
/// does not claim evidence it no longer has.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructuralEvidence {
    /// A genuine multiplication survives canonicalization (partial-product sums,
    /// DSP-shaped work).
    pub multiplier: bool,
    /// Additive arithmetic survives (add/sub/neg — carry-chain shaped work).
    pub carry_arith: bool,
    /// The root is a 1-bit comparison (or reduction) — comparison-template shaped.
    pub comparison: bool,
    /// Shifts survive canonicalization.
    pub shifts: bool,
    /// Bitwise logic (and/or/xor/not) survives.
    pub bitwise: bool,
    /// Multiplexing (`ite`) survives.
    pub mux: bool,
    /// Width of the program's root.
    pub root_width: u32,
}

fn var_symbol(name: &str) -> String {
    format!("v!{name}")
}

fn opaque_symbol(id: NodeId) -> String {
    format!("o!{}", id.0)
}

fn parse_symbol(name: &str) -> Option<SymbolKind<'_>> {
    if let Some(var) = name.strip_prefix("v!") {
        return Some(SymbolKind::Var(var));
    }
    name.strip_prefix("o!").and_then(|id| id.parse().ok()).map(|id| SymbolKind::Opaque(NodeId(id)))
}

enum SymbolKind<'a> {
    Var(&'a str),
    Opaque(NodeId),
}

/// Embeds the combinational cone rooted at `root` into the e-graph, stopping at
/// registers, primitives, and holes (which become opaque symbol leaves).
fn cone_to_egraph(
    prog: &Prog,
    root: NodeId,
    egraph: &mut EGraph,
    memo: &mut HashMap<NodeId, EClassId>,
) -> EClassId {
    // Iterative post-order; `None` marks a node whose children are being visited,
    // so a (necessarily ill-formed) combinational cycle degrades to an opaque leaf
    // instead of hanging.
    let mut state: HashMap<NodeId, Option<EClassId>> = HashMap::new();
    for (&id, &class) in memo.iter() {
        state.insert(id, Some(class));
    }
    let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
    while let Some((id, ready)) = stack.pop() {
        if let Some(Some(_)) = state.get(&id) {
            continue;
        }
        let node = prog.node(id).expect("node id belongs to the program");
        let class = match node {
            Node::BV(bv) => Some(egraph.add(ENode::Const(bv.clone()))),
            Node::Var { name, width } => {
                Some(egraph.add(ENode::Symbol { name: var_symbol(name), width: *width }))
            }
            Node::Reg { .. } | Node::Prim(_) | Node::Hole { .. } => {
                Some(egraph.add(ENode::Symbol { name: opaque_symbol(id), width: prog.width(id) }))
            }
            Node::Op(op, args) => {
                if ready {
                    let arg_classes: Vec<EClassId> = args
                        .iter()
                        .map(|a| state[a].expect("children visited before parents"))
                        .collect();
                    Some(egraph.add(ENode::Op { op: *op, args: arg_classes }))
                } else if let std::collections::hash_map::Entry::Vacant(slot) = state.entry(id) {
                    slot.insert(None);
                    stack.push((id, true));
                    for &a in args {
                        stack.push((a, false));
                    }
                    None
                } else {
                    // Re-encountered while open: combinational cycle fallback.
                    Some(
                        egraph
                            .add(ENode::Symbol { name: opaque_symbol(id), width: prog.width(id) }),
                    )
                }
            }
        };
        if let Some(class) = class {
            state.insert(id, Some(class));
        }
    }
    let class = state[&root].expect("root cone embedded");
    for (id, entry) in state {
        if let Some(class) = entry {
            memo.insert(id, class);
        }
    }
    class
}

impl Prog {
    /// Returns a semantically-equivalent program with every combinational region
    /// canonicalized by equality saturation under the shared QF_BV rule set.
    /// Registers, primitives, and holes are opaque boundaries (kept as-is);
    /// declared inputs are preserved even when rewriting proves them irrelevant,
    /// so the program's interface — and therefore sketch generation — is stable.
    pub fn saturated(&self) -> Prog {
        self.saturated_with_stats(&Limits::default()).prog
    }

    /// [`Prog::saturated`] with explicit limits and the counters the `exp_egraph`
    /// benchmark records.
    pub fn saturated_with_stats(&self, limits: &Limits) -> SaturateOutcome {
        let mut sp = lr_trace::span("saturate");
        // The cone roots: the program output plus every sequential/structural
        // boundary's inputs.
        let mut cone_roots: Vec<NodeId> = vec![self.root];
        for (_, node) in self.nodes() {
            match node {
                Node::Reg { data, .. } => cone_roots.push(*data),
                Node::Prim(p) => cone_roots.extend(p.bindings.values().copied()),
                _ => {}
            }
        }
        cone_roots.sort_unstable();
        cone_roots.dedup();

        // One shared e-graph across all cones, so common sub-structure saturates
        // once and extraction shares it.
        let mut egraph = EGraph::new();
        let mut embed_memo: HashMap<NodeId, EClassId> = HashMap::new();
        let root_classes: Vec<EClassId> = cone_roots
            .iter()
            .map(|&r| cone_to_egraph(self, r, &mut egraph, &mut embed_memo))
            .collect();
        let stats = saturate(&mut egraph, lr_egraph::rules::bv_rules_cached(), limits);
        let extractor = Extractor::new(&egraph, &NodeCount);
        let (expr, root_indices) = extractor.extract_many(&root_classes);

        // Rebuild: original nodes keep their ids; extracted expressions get fresh
        // ids above the current maximum (preserving W2 global uniqueness).
        let mut nodes: BTreeMap<NodeId, Node> = self.nodes.clone();
        let mut next_id = self.max_id().map(|m| m + 1).unwrap_or(0);
        let mut var_ids: HashMap<&str, NodeId> = HashMap::new();
        for (&id, node) in &self.nodes {
            if let Node::Var { name, .. } = node {
                var_ids.entry(name.as_str()).or_insert(id);
            }
        }
        let mut expr_ids: Vec<NodeId> = Vec::with_capacity(expr.len());
        for rec in &expr.nodes {
            let id = match rec {
                RecNode::Symbol { name, .. } => match parse_symbol(name) {
                    Some(SymbolKind::Var(var)) => {
                        *var_ids.get(var).expect("symbol names an existing variable")
                    }
                    Some(SymbolKind::Opaque(id)) => id,
                    None => unreachable!("saturate only embeds v!/o! symbols"),
                },
                RecNode::Const(bv) => {
                    let id = NodeId(next_id);
                    next_id += 1;
                    nodes.insert(id, Node::BV(bv.clone()));
                    id
                }
                RecNode::Op { op, args } => {
                    let args: Vec<NodeId> = args.iter().map(|&i| expr_ids[i]).collect();
                    let id = NodeId(next_id);
                    next_id += 1;
                    nodes.insert(id, Node::Op(*op, args));
                    id
                }
            };
            expr_ids.push(id);
        }
        let extracted: HashMap<NodeId, NodeId> =
            cone_roots.iter().zip(&root_indices).map(|(&old, &idx)| (old, expr_ids[idx])).collect();

        // Re-point the sequential/structural boundaries at the canonical cones.
        for node in nodes.values_mut() {
            match node {
                Node::Reg { data, .. } => {
                    if let Some(&new) = extracted.get(data) {
                        *data = new;
                    }
                }
                Node::Prim(p) => {
                    for target in p.bindings.values_mut() {
                        if let Some(&new) = extracted.get(target) {
                            *target = new;
                        }
                    }
                }
                _ => {}
            }
        }
        let root = extracted.get(&self.root).copied().unwrap_or(self.root);

        // Dead-node elimination, keeping every `Var` node so the program's input
        // interface (free_vars / declared_inputs) survives even when rewriting
        // proved an input irrelevant.
        let mut reachable = std::collections::BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !reachable.insert(id) {
                continue;
            }
            match &nodes[&id] {
                Node::Op(_, args) => stack.extend(args.iter().copied()),
                Node::Reg { data, .. } => stack.push(*data),
                Node::Prim(p) => stack.extend(p.bindings.values().copied()),
                _ => {}
            }
        }
        let nodes: BTreeMap<NodeId, Node> = nodes
            .into_iter()
            .filter(|(id, node)| reachable.contains(id) || matches!(node, Node::Var { .. }))
            .collect();
        let prog = Prog { name: self.name.clone(), root, nodes, inputs: self.inputs.clone() };
        if sp.is_active() {
            sp.attr("cones", cone_roots.len() as u64);
            sp.attr("extracted_nodes", expr.len() as u64);
            sp.attr("egraph_iterations", stats.iterations as u64);
            sp.attr("egraph_unions", stats.unions);
        }
        SaturateOutcome { prog, stats, cones: cone_roots.len(), extracted_nodes: expr.len() }
    }

    /// The operator families surviving canonicalization — see
    /// [`StructuralEvidence`]. Used by `lr_sketch::guidance` to rank which sketch
    /// templates to try first.
    pub fn structural_evidence(&self) -> StructuralEvidence {
        StructuralEvidence::scan(&self.saturated())
    }
}

impl StructuralEvidence {
    /// Scans a program's operators *as-is* (no saturation). Callers that want
    /// disguise-proof evidence pass an already-canonical program (this is what
    /// [`Prog::structural_evidence`] does); callers running with the e-graph
    /// disabled scan the raw program and get a purely syntactic ranking.
    pub fn scan(canonical: &Prog) -> StructuralEvidence {
        let mut ev = StructuralEvidence {
            root_width: canonical.width(canonical.root()),
            ..Default::default()
        };
        // Comparison evidence requires a predicate-shaped *root* (possibly behind
        // a NOT — `!(a < b)` is still comparison work). Buried comparisons feeding
        // wider logic or muxes are condition logic, not a comparison design.
        let mut predicate_root = false;
        if let Some(Node::Op(op, args)) = canonical.node(canonical.root()) {
            predicate_root = op.is_predicate();
            if let (BvOp::Not, Some(Node::Op(inner, _))) =
                (op, args.first().and_then(|a| canonical.node(*a)))
            {
                predicate_root |= inner.is_predicate();
            }
        }
        ev.comparison = ev.root_width == 1 && predicate_root;
        for (_, node) in canonical.nodes() {
            let Node::Op(op, _) = node else { continue };
            match op {
                BvOp::Mul => ev.multiplier = true,
                BvOp::Add | BvOp::Sub | BvOp::Neg => ev.carry_arith = true,
                BvOp::Shl | BvOp::Lshr | BvOp::Ashr => ev.shifts = true,
                BvOp::And | BvOp::Or | BvOp::Xor | BvOp::Not => ev.bitwise = true,
                BvOp::Ite => ev.mux = true,
                _ => {}
            }
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::StreamInputs;
    use crate::ProgBuilder;
    use lr_bv::BitVec;

    #[test]
    fn saturated_folds_disguised_identities() {
        // ((a + 0xff) + 1) − (b − b)  ≡  a.
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let ff = b.constant_u64(0xff, 8);
        let one = b.constant_u64(1, 8);
        let t = b.op2(BvOp::Add, a, ff);
        let t = b.op2(BvOp::Add, t, one);
        let bmb = b.op2(BvOp::Sub, bb, bb);
        let out = b.op2(BvOp::Sub, t, bmb);
        let prog = b.finish(out);
        let canonical = prog.saturated();
        assert!(canonical.well_formed().is_ok());
        // The root collapses to the input variable itself.
        assert!(
            matches!(canonical.node(canonical.root()), Some(Node::Var { name, .. }) if name == "a")
        );
        // The interface survives: `b` is still a free variable.
        assert_eq!(prog.free_vars(), canonical.free_vars());
        assert_eq!(prog.declared_inputs(), canonical.declared_inputs());
    }

    #[test]
    fn saturated_preserves_semantics_across_registers() {
        // reg((a − b) · c) + reg-of-reg structure.
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let c = b.input("c", 8);
        let amb = b.op2(BvOp::Sub, a, bb);
        let prod = b.op2(BvOp::Mul, amb, c);
        let r1 = b.reg(prod, 8);
        let zero = b.constant_u64(0, 8);
        let noisy = b.op2(BvOp::Add, r1, zero);
        let r2 = b.reg(noisy, 8);
        let prog = b.finish(r2);
        let canonical = prog.saturated();
        assert!(canonical.well_formed().is_ok());
        let env = StreamInputs::from_constants([
            ("a".to_string(), BitVec::from_u64(9, 8)),
            ("b".to_string(), BitVec::from_u64(4, 8)),
            ("c".to_string(), BitVec::from_u64(3, 8)),
        ]);
        for t in 0..4 {
            assert_eq!(
                prog.interp(&env, t).unwrap(),
                canonical.interp(&env, t).unwrap(),
                "cycle {t}"
            );
        }
        // The registers survive as registers (sequential depth is untouched).
        let before = prog.count_kinds();
        let after = canonical.count_kinds();
        assert_eq!(before.regs, after.regs);
    }

    #[test]
    fn structural_evidence_sees_through_disguises() {
        // A multiply hidden behind a negate path still reads as a multiplier.
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let zero = b.constant_u64(0, 8);
        let nb = b.op2(BvOp::Sub, zero, bb);
        let prod = b.op2(BvOp::Mul, a, nb);
        let out = b.op2(BvOp::Sub, zero, prod);
        let prog = b.finish(out);
        let ev = prog.structural_evidence();
        assert!(ev.multiplier);
        assert_eq!(ev.root_width, 8);
        assert!(!ev.comparison);

        // A multiply-by-one is *not* multiplier evidence after canonicalization.
        let mut b = ProgBuilder::new("q");
        let a = b.input("a", 8);
        let one = b.constant_u64(1, 8);
        let prod = b.op2(BvOp::Mul, a, one);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Xor, prod, bb);
        let prog = b.finish(out);
        let ev = prog.structural_evidence();
        assert!(!ev.multiplier);
        assert!(ev.bitwise);

        // A comparison root reads as comparison-shaped.
        let mut b = ProgBuilder::new("r");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Ult, a, bb);
        let prog = b.finish(out);
        let ev = prog.structural_evidence();
        assert!(ev.comparison);
        assert_eq!(ev.root_width, 1);
    }

    #[test]
    fn saturated_keeps_holes_and_prims_opaque() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let h = b.hole("k", 8, crate::HoleDomain::AnyConstant);
        let zero = b.constant_u64(0, 8);
        let noisy = b.op2(BvOp::Add, h, zero);
        let out = b.op2(BvOp::Xor, a, noisy);
        let prog = b.finish(out);
        let canonical = prog.saturated();
        assert!(canonical.well_formed().is_ok());
        assert!(canonical.has_holes());
        // The + 0 around the hole is gone.
        let stats = canonical.count_kinds();
        assert_eq!(stats.ops, 1, "only the xor remains: {canonical:?}");
    }
}
