//! # lr-ir: the ℒlr intermediate language
//!
//! This crate implements the ℒlr language of the paper's §3.2: a graph-structured IR
//! whose nodes are constant bitvectors, input variables, combinational operators,
//! registers, hardware primitives, and holes (Fig. 3). On top of the syntax it
//! provides:
//!
//! * well-formedness checking (conditions W1–W6, including the combinational-loop
//!   witness of Property 1) in [`wf`],
//! * the stream semantics of Fig. 4 as a concrete interpreter in [`interp`],
//! * symbolic interpretation into `lr-smt` terms in [`symbolic`], which is how the
//!   synthesis queries of §3.3 are constructed,
//! * the behavioral / structural / sketch sublanguage classification and hole
//!   filling in [`holes`].
//!
//! Programs are built with [`ProgBuilder`]:
//!
//! ```
//! use lr_bv::BitVec;
//! use lr_ir::{ProgBuilder, BvOp};
//!
//! // out = (a + b) & c, an 8-bit combinational design.
//! let mut b = ProgBuilder::new("example");
//! let a = b.input("a", 8);
//! let bb = b.input("b", 8);
//! let c = b.input("c", 8);
//! let sum = b.op2(BvOp::Add, a, bb);
//! let out = b.op2(BvOp::And, sum, c);
//! let prog = b.finish(out);
//! assert!(prog.well_formed().is_ok());
//! assert!(prog.is_behavioral());
//! ```

pub mod holes;
pub mod interp;
pub mod opt;
pub mod saturate;
pub mod symbolic;
pub mod wf;

use std::collections::BTreeMap;
use std::fmt;

use lr_bv::BitVec;

pub use holes::{HoleDomain, HoleInfo};
pub use interp::{Inputs, InterpError, StreamInputs};
pub use lr_smt::BvOp;
pub use saturate::{SaturateOutcome, StructuralEvidence};
pub use wf::WellFormednessError;

/// Identifier of a node within a [`Prog`] (unique across the whole program,
/// including sub-programs carried by primitives — condition W2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A hardware primitive instance (the `Prim binds Prog` form of Fig. 3).
///
/// The `semantics` program defines the primitive's behaviour over the variables in
/// `bindings`; it is what the synthesis engine reasons about. The remaining fields
/// are structural metadata used when the program is lowered to structural Verilog
/// (they do not affect semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct PrimInstance {
    /// Architecture-specific module name (e.g. `DSP48E2`, `LUT6`, `frac_lut4`).
    pub module: String,
    /// The Lakeroad primitive interface this instance implements (e.g. `DSP`, `LUT4`).
    pub interface: String,
    /// Binding map: free variable of `semantics` → node id in the *enclosing* program.
    pub bindings: BTreeMap<String, NodeId>,
    /// The ℒbeh program giving the primitive's semantics; its free variables must be
    /// exactly the keys of `bindings` (condition W5).
    pub semantics: Prog,
    /// The subset of binding names that are Verilog *parameters* (as opposed to
    /// ports) when emitting structural HDL.
    pub param_names: Vec<String>,
    /// Name of the Verilog output port the semantics root corresponds to.
    pub output_port: String,
}

/// A node of an ℒlr program (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A constant bitvector (`BV b`).
    BV(BitVec),
    /// An input variable (`Var x`) with an explicit width.
    Var {
        /// Variable name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// A combinational operator applied to other nodes (`OP op Id*`).
    Op(BvOp, Vec<NodeId>),
    /// A register (`Reg id b_init`): samples its data input at each positive clock
    /// edge, and holds `init` at time 0.
    Reg {
        /// The data input node.
        data: NodeId,
        /// The initialization value (also fixes the register's width).
        init: BitVec,
    },
    /// A hardware primitive instance (`Prim binds Prog`).
    Prim(PrimInstance),
    /// A syntactic hole (`■x`), to be filled by synthesis.
    Hole {
        /// Hole name (unique within the program).
        name: String,
        /// Width of the node that must fill the hole.
        width: u32,
        /// The set of values allowed to fill the hole (the map `h` of §3.1).
        domain: HoleDomain,
    },
}

/// An ℒlr program: a root node plus a graph of nodes (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Prog {
    name: String,
    root: NodeId,
    nodes: BTreeMap<NodeId, Node>,
    /// Declared input order (for HDL round-tripping and report stability).
    inputs: Vec<(String, u32)>,
}

impl Prog {
    /// The program's name (used for module names when emitting HDL).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root (output) node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node behind an id, if it exists in this program (not in sub-programs).
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Iterates over `(id, node)` pairs in ascending id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().map(|(&id, n)| (id, n))
    }

    /// Number of nodes in this program (excluding sub-programs).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the program has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The declared inputs, in declaration order.
    pub fn declared_inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// The free variables of the program: names of `Var` nodes at this level
    /// (sub-program variables are bound by their primitive's binding map).
    pub fn free_vars(&self) -> Vec<(String, u32)> {
        let mut seen = std::collections::BTreeMap::new();
        for node in self.nodes.values() {
            if let Node::Var { name, width } = node {
                seen.entry(name.clone()).or_insert(*width);
            }
        }
        seen.into_iter().collect()
    }

    /// The width in bits of a node.
    ///
    /// # Panics
    /// Panics if the id does not belong to this program.
    pub fn width(&self, id: NodeId) -> u32 {
        width_in(&self.nodes, id)
    }

    /// Ids of all nodes in this program and, recursively, in primitive sub-programs
    /// (the paper's `p.all_ids`).
    pub fn all_ids(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for (&id, node) in &self.nodes {
            out.push(id);
            if let Node::Prim(p) = node {
                out.extend(p.semantics.all_ids());
            }
        }
        out
    }

    /// The inputs of a node (the `inputs` function of §3.2.1).
    pub fn node_inputs(&self, id: NodeId) -> Vec<NodeId> {
        match &self.nodes[&id] {
            Node::BV(_) | Node::Var { .. } | Node::Hole { .. } => Vec::new(),
            Node::Op(_, args) => args.clone(),
            Node::Reg { data, .. } => vec![*data],
            Node::Prim(p) => p.bindings.values().copied().collect(),
        }
    }

    /// Renames the program.
    pub fn with_name(mut self, name: impl Into<String>) -> Prog {
        self.name = name.into();
        self
    }

    /// Returns a copy of the program with every node id (including ids inside
    /// primitive sub-programs) shifted by `offset`. Used to keep ids globally unique
    /// (condition W2) when a program built elsewhere — e.g. primitive semantics
    /// extracted from HDL — is embedded as a `Prim` sub-program.
    pub fn with_id_offset(&self, offset: u32) -> Prog {
        let remap = |id: NodeId| NodeId(id.0 + offset);
        let nodes = self
            .nodes
            .iter()
            .map(|(&id, node)| {
                let node = match node {
                    Node::BV(bv) => Node::BV(bv.clone()),
                    Node::Var { name, width } => Node::Var { name: name.clone(), width: *width },
                    Node::Hole { name, width, domain } => {
                        Node::Hole { name: name.clone(), width: *width, domain: domain.clone() }
                    }
                    Node::Op(op, args) => Node::Op(*op, args.iter().map(|&a| remap(a)).collect()),
                    Node::Reg { data, init } => {
                        Node::Reg { data: remap(*data), init: init.clone() }
                    }
                    Node::Prim(p) => Node::Prim(PrimInstance {
                        module: p.module.clone(),
                        interface: p.interface.clone(),
                        bindings: p.bindings.iter().map(|(k, &v)| (k.clone(), remap(v))).collect(),
                        semantics: p.semantics.with_id_offset(offset),
                        param_names: p.param_names.clone(),
                        output_port: p.output_port.clone(),
                    }),
                };
                (remap(id), node)
            })
            .collect();
        Prog { name: self.name.clone(), root: remap(self.root), nodes, inputs: self.inputs.clone() }
    }

    /// The largest node id used by this program or any sub-program, if any nodes
    /// exist. Useful for choosing id offsets.
    pub fn max_id(&self) -> Option<u32> {
        self.all_ids().into_iter().map(|id| id.0).max()
    }

    /// Counts nodes by kind; used by resource accounting and reports.
    pub fn count_kinds(&self) -> ProgStats {
        let mut stats = ProgStats::default();
        for node in self.nodes.values() {
            match node {
                Node::BV(_) => stats.constants += 1,
                Node::Var { .. } => stats.vars += 1,
                Node::Op(..) => stats.ops += 1,
                Node::Reg { .. } => stats.regs += 1,
                Node::Prim(_) => stats.prims += 1,
                Node::Hole { .. } => stats.holes += 1,
            }
        }
        stats
    }
}

/// Computes the width of a node from a node map (shared between [`Prog::width`]
/// and [`ProgBuilder::width_of`], so widths can be queried while a program is
/// still being built — without cloning and finishing the builder).
///
/// Register nodes never recurse (their width is fixed by their init value), so
/// the self-referential placeholders of [`ProgBuilder::reg_placeholder`] are
/// safe to query.
fn width_in(nodes: &BTreeMap<NodeId, Node>, id: NodeId) -> u32 {
    match &nodes[&id] {
        Node::BV(bv) => bv.width(),
        Node::Var { width, .. } => *width,
        Node::Hole { width, .. } => *width,
        Node::Reg { init, .. } => init.width(),
        Node::Prim(p) => p.semantics.width(p.semantics.root()),
        Node::Op(op, args) => {
            let w = |i: usize| width_in(nodes, args[i]);
            match op {
                BvOp::Not | BvOp::Neg => w(0),
                BvOp::Concat => w(0) + w(1),
                BvOp::Extract { hi, lo } => hi - lo + 1,
                BvOp::ZeroExt { width } | BvOp::SignExt { width } => *width,
                BvOp::Eq
                | BvOp::Ult
                | BvOp::Ule
                | BvOp::Slt
                | BvOp::Sle
                | BvOp::RedOr
                | BvOp::RedAnd
                | BvOp::RedXor => 1,
                BvOp::Ite => w(1),
                _ => w(0),
            }
        }
    }
}

/// Node counts per kind for a program (top level only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgStats {
    /// Constant nodes.
    pub constants: usize,
    /// Input variable nodes.
    pub vars: usize,
    /// Combinational operator nodes.
    pub ops: usize,
    /// Register nodes.
    pub regs: usize,
    /// Primitive instances.
    pub prims: usize,
    /// Holes.
    pub holes: usize,
}

/// A builder for ℒlr programs that allocates node ids and keeps the program
/// well-formed by construction (ids are unique, inputs refer to existing nodes).
#[derive(Debug, Clone)]
pub struct ProgBuilder {
    name: String,
    nodes: BTreeMap<NodeId, Node>,
    inputs: Vec<(String, u32)>,
    next_id: u32,
}

impl ProgBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgBuilder { name: name.into(), nodes: BTreeMap::new(), inputs: Vec::new(), next_id: 0 }
    }

    /// Creates a builder whose node ids start at `base` (used when composing programs
    /// that must keep globally unique ids, e.g. primitive semantics sub-programs).
    pub fn with_base_id(name: impl Into<String>, base: u32) -> Self {
        ProgBuilder { name: name.into(), nodes: BTreeMap::new(), inputs: Vec::new(), next_id: base }
    }

    fn insert(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(id, node);
        id
    }

    /// The id that will be assigned to the next node.
    pub fn peek_next_id(&self) -> u32 {
        self.next_id
    }

    /// The width in bits of a node already added to this builder.
    ///
    /// This is the query HDL elaboration uses to apply Verilog width-context
    /// rules while the program is still under construction; it reads the
    /// builder's node map directly instead of cloning and finishing a
    /// throwaway program per lookup (which was quadratic in module size).
    ///
    /// # Panics
    /// Panics if the id was not allocated by this builder.
    pub fn width_of(&self, id: NodeId) -> u32 {
        width_in(&self.nodes, id)
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: BitVec) -> NodeId {
        self.insert(Node::BV(value))
    }

    /// Adds a constant node from a `u64`.
    pub fn constant_u64(&mut self, value: u64, width: u32) -> NodeId {
        self.constant(BitVec::from_u64(value, width))
    }

    /// Adds an input variable node and records it in the declared-input list.
    pub fn input(&mut self, name: &str, width: u32) -> NodeId {
        if !self.inputs.iter().any(|(n, _)| n == name) {
            self.inputs.push((name.to_string(), width));
        }
        self.insert(Node::Var { name: name.to_string(), width })
    }

    /// Adds a variable node without recording it as a declared input (used for
    /// primitive semantics programs whose variables are bound by the primitive).
    pub fn var(&mut self, name: &str, width: u32) -> NodeId {
        self.insert(Node::Var { name: name.to_string(), width })
    }

    /// Adds a unary operator node.
    pub fn op1(&mut self, op: BvOp, a: NodeId) -> NodeId {
        self.insert(Node::Op(op, vec![a]))
    }

    /// Adds a binary operator node.
    pub fn op2(&mut self, op: BvOp, a: NodeId, b: NodeId) -> NodeId {
        self.insert(Node::Op(op, vec![a, b]))
    }

    /// Adds a ternary operator node (if-then-else).
    pub fn op3(&mut self, op: BvOp, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        self.insert(Node::Op(op, vec![a, b, c]))
    }

    /// Adds an if-then-else node.
    pub fn mux(&mut self, cond: NodeId, then_: NodeId, else_: NodeId) -> NodeId {
        self.op3(BvOp::Ite, cond, then_, else_)
    }

    /// Adds an extract node.
    pub fn extract(&mut self, a: NodeId, hi: u32, lo: u32) -> NodeId {
        self.op1(BvOp::Extract { hi, lo }, a)
    }

    /// Adds a zero-extension node.
    pub fn zext(&mut self, a: NodeId, width: u32) -> NodeId {
        self.op1(BvOp::ZeroExt { width }, a)
    }

    /// Adds a sign-extension node.
    pub fn sext(&mut self, a: NodeId, width: u32) -> NodeId {
        self.op1(BvOp::SignExt { width }, a)
    }

    /// Adds a register node initialized to zero of the data node's width.
    pub fn reg(&mut self, data: NodeId, width: u32) -> NodeId {
        self.insert(Node::Reg { data, init: BitVec::zeros(width) })
    }

    /// Adds a register node with an explicit initialization value.
    pub fn reg_init(&mut self, data: NodeId, init: BitVec) -> NodeId {
        self.insert(Node::Reg { data, init })
    }

    /// Adds a register node whose data input is not yet known (it points at itself).
    /// Use [`ProgBuilder::set_reg_data`] to patch it once the driving node exists.
    /// This is how HDL elaboration handles registers that are read before the
    /// statement that assigns them (including self-feedback such as counters).
    pub fn reg_placeholder(&mut self, width: u32) -> NodeId {
        self.reg_placeholder_init(BitVec::zeros(width))
    }

    /// Like [`ProgBuilder::reg_placeholder`], but with an explicit initial value
    /// (AIGER latches may reset to 1, which a zero-initialized placeholder
    /// cannot express).
    pub fn reg_placeholder_init(&mut self, init: BitVec) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(id, Node::Reg { data: id, init });
        id
    }

    /// Patches the data input of a register created by [`ProgBuilder::reg_placeholder`].
    ///
    /// # Panics
    /// Panics if `reg` is not a register node of this builder.
    pub fn set_reg_data(&mut self, reg: NodeId, data: NodeId) {
        match self.nodes.get_mut(&reg) {
            Some(Node::Reg { data: slot, .. }) => *slot = data,
            _ => panic!("set_reg_data: {reg} is not a register node"),
        }
    }

    /// Adds a hole node.
    pub fn hole(&mut self, name: &str, width: u32, domain: HoleDomain) -> NodeId {
        self.insert(Node::Hole { name: name.to_string(), width, domain })
    }

    /// Adds a primitive instance node.
    pub fn prim(&mut self, instance: PrimInstance) -> NodeId {
        self.insert(Node::Prim(instance))
    }

    /// Copies every node of `prog` into this builder, substituting each free
    /// variable named in `subst` with an existing node of this builder, and
    /// returns the id of the copied root. This is how per-cone mapped
    /// implementations are stitched back into one design: the cone's canonical
    /// inputs are replaced by the nodes that drive them at the top level.
    ///
    /// Ids are shifted uniformly (as in [`Prog::with_id_offset`]) so primitive
    /// sub-programs stay disjoint from this builder's ids (condition W2).
    /// Variables *not* named in `subst` are copied as-is and stay free; they are
    /// not recorded as declared inputs.
    ///
    /// # Panics
    /// Panics if a substituted node's width differs from the variable it
    /// replaces.
    pub fn inline(&mut self, prog: &Prog, subst: &BTreeMap<String, NodeId>) -> NodeId {
        let offset = self.next_id;
        let shifted = prog.with_id_offset(offset);
        self.next_id = shifted.max_id().map_or(offset, |max| max + 1);
        let mut redirect: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for (id, node) in shifted.nodes() {
            if let Node::Var { name, width } = node {
                if let Some(&target) = subst.get(name) {
                    assert_eq!(
                        self.width_of(target),
                        *width,
                        "substitution for `{name}` must match the variable's width"
                    );
                    redirect.insert(id, target);
                }
            }
        }
        let rd = |id: NodeId| redirect.get(&id).copied().unwrap_or(id);
        for (id, node) in shifted.nodes() {
            if redirect.contains_key(&id) {
                continue; // The variable dissolves into its driver.
            }
            let node = match node {
                Node::Op(op, args) => Node::Op(*op, args.iter().map(|&a| rd(a)).collect()),
                Node::Reg { data, init } => Node::Reg { data: rd(*data), init: init.clone() },
                Node::Prim(p) => Node::Prim(PrimInstance {
                    bindings: p.bindings.iter().map(|(k, &v)| (k.clone(), rd(v))).collect(),
                    ..p.clone()
                }),
                other => other.clone(),
            };
            self.nodes.insert(id, node);
        }
        rd(shifted.root())
    }

    /// Finalizes the program with `root` as its output.
    ///
    /// # Panics
    /// Panics if `root` was not allocated by this builder.
    pub fn finish(self, root: NodeId) -> Prog {
        assert!(self.nodes.contains_key(&root), "root node was not created by this builder");
        Prog { name: self.name, root, nodes: self.nodes, inputs: self.inputs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_prog() -> Prog {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let c = b.constant_u64(1, 8);
        let sum = b.op2(BvOp::Add, a, c);
        b.finish(sum)
    }

    #[test]
    fn builder_allocates_unique_ids() {
        let prog = simple_prog();
        let ids = prog.all_ids();
        let set: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(ids.len(), set.len());
        assert_eq!(prog.len(), 3);
    }

    #[test]
    fn widths_are_computed() {
        let mut b = ProgBuilder::new("w");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let cat = b.op2(BvOp::Concat, a, bb);
        let cmp = b.op2(BvOp::Ult, a, bb);
        let ext = b.extract(cat, 11, 4);
        let z = b.zext(a, 20);
        let r = b.reg(a, 8);
        let prog = b.finish(cat);
        assert_eq!(prog.width(cat), 16);
        assert_eq!(prog.width(cmp), 1);
        assert_eq!(prog.width(ext), 8);
        assert_eq!(prog.width(z), 20);
        assert_eq!(prog.width(r), 8);
    }

    #[test]
    fn free_vars_and_declared_inputs() {
        let prog = simple_prog();
        assert_eq!(prog.free_vars(), vec![("a".to_string(), 8)]);
        assert_eq!(prog.declared_inputs(), &[("a".to_string(), 8)]);
    }

    #[test]
    fn node_inputs_follow_the_paper() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 4);
        let c = b.constant_u64(3, 4);
        let sum = b.op2(BvOp::Add, a, c);
        let r = b.reg(sum, 4);
        let prog = b.finish(r);
        assert!(prog.node_inputs(a).is_empty());
        assert!(prog.node_inputs(c).is_empty());
        assert_eq!(prog.node_inputs(sum), vec![a, c]);
        assert_eq!(prog.node_inputs(r), vec![sum]);
    }

    #[test]
    fn count_kinds() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 4);
        let h = b.hole("h", 4, HoleDomain::AnyConstant);
        let sum = b.op2(BvOp::Add, a, h);
        let r = b.reg(sum, 4);
        let prog = b.finish(r);
        let stats = prog.count_kinds();
        assert_eq!(stats.vars, 1);
        assert_eq!(stats.holes, 1);
        assert_eq!(stats.ops, 1);
        assert_eq!(stats.regs, 1);
        assert_eq!(stats.prims, 0);
    }

    #[test]
    #[should_panic]
    fn finish_with_foreign_root_panics() {
        let b = ProgBuilder::new("p");
        b.finish(NodeId(42));
    }

    #[test]
    fn inline_substitutes_variables_and_keeps_ids_unique() {
        // Inner program: x & ~y.
        let mut inner = ProgBuilder::new("cone");
        let x = inner.input("x", 4);
        let y = inner.input("y", 4);
        let ny = inner.op1(BvOp::Not, y);
        let and = inner.op2(BvOp::And, x, ny);
        let cone = inner.finish(and);

        let mut outer = ProgBuilder::new("top");
        let a = outer.input("a", 4);
        let b = outer.input("b", 4);
        let sum = outer.op2(BvOp::Add, a, b);
        let subst: BTreeMap<String, NodeId> =
            [("x".to_string(), sum), ("y".to_string(), b)].into_iter().collect();
        let root = outer.inline(&cone, &subst);
        let prog = outer.finish(root);
        assert!(prog.well_formed().is_ok());
        let ids = prog.all_ids();
        let set: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(ids.len(), set.len());
        // Only the outer inputs remain free; the cone's variables dissolved.
        assert_eq!(prog.free_vars(), vec![("a".to_string(), 4), ("b".to_string(), 4)],);
        let env = crate::interp::StreamInputs::from_constants([
            ("a".to_string(), BitVec::from_u64(0b1100, 4)),
            ("b".to_string(), BitVec::from_u64(0b0101, 4)),
        ]);
        // (a + b) & ~b = 0b0001 & 0b1010.
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(0b0000, 4));
    }

    #[test]
    #[should_panic]
    fn inline_rejects_width_mismatched_substitutions() {
        let mut inner = ProgBuilder::new("cone");
        let x = inner.input("x", 4);
        let cone = inner.finish(x);
        let mut outer = ProgBuilder::new("top");
        let wide = outer.input("a", 8);
        let subst: BTreeMap<String, NodeId> = [("x".to_string(), wide)].into_iter().collect();
        outer.inline(&cone, &subst);
    }

    #[test]
    fn with_base_id_keeps_ids_disjoint() {
        let mut outer = ProgBuilder::new("outer");
        let a = outer.input("a", 4);
        let mut inner = ProgBuilder::with_base_id("inner", 1000);
        let x = inner.var("x", 4);
        let inner_prog = inner.finish(x);
        let prim = PrimInstance {
            module: "BUF".into(),
            interface: "BUF".into(),
            bindings: [("x".to_string(), a)].into_iter().collect(),
            semantics: inner_prog,
            param_names: vec![],
            output_port: "o".into(),
        };
        let p = outer.prim(prim);
        let prog = outer.finish(p);
        let ids = prog.all_ids();
        let set: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(ids.len(), set.len());
    }
}
