//! The concrete stream interpreter for ℒlr (the `Interp` function of Fig. 4).
//!
//! Inputs are *streams*: functions from time (a clock-cycle index) to bitvectors. The
//! [`StreamInputs`] type provides the two common cases — inputs held constant over
//! time and explicit per-cycle traces — and the [`Inputs`] trait lets tests supply
//! arbitrary streams.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use lr_bv::BitVec;

use crate::{Node, NodeId, Prog};

/// An input environment: a map from variable names to streams of bitvectors.
pub trait Inputs {
    /// The value of input `name` at clock cycle `time`, if bound.
    fn get(&self, name: &str, time: u32) -> Option<BitVec>;
}

/// The standard input environment: each variable is either held constant or driven by
/// an explicit per-cycle trace (the last trace value is held once the trace runs out,
/// matching how testbenches hold their final stimulus).
#[derive(Debug, Clone, Default)]
pub struct StreamInputs {
    constants: HashMap<String, BitVec>,
    traces: HashMap<String, Vec<BitVec>>,
}

impl StreamInputs {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an environment from constant bindings.
    pub fn from_constants<I: IntoIterator<Item = (String, BitVec)>>(iter: I) -> Self {
        StreamInputs { constants: iter.into_iter().collect(), traces: HashMap::new() }
    }

    /// Binds a variable to a constant stream.
    pub fn set_constant(&mut self, name: impl Into<String>, value: BitVec) -> &mut Self {
        self.constants.insert(name.into(), value);
        self
    }

    /// Binds a variable to an explicit trace (value per clock cycle).
    ///
    /// # Panics
    /// Panics if the trace is empty.
    pub fn set_trace(&mut self, name: impl Into<String>, trace: Vec<BitVec>) -> &mut Self {
        assert!(!trace.is_empty(), "trace must contain at least one value");
        self.traces.insert(name.into(), trace);
        self
    }

    /// All variable names bound by this environment.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.constants.keys().chain(self.traces.keys()).map(|s| s.as_str())
    }
}

impl Inputs for StreamInputs {
    fn get(&self, name: &str, time: u32) -> Option<BitVec> {
        if let Some(trace) = self.traces.get(name) {
            let idx = (time as usize).min(trace.len() - 1);
            return Some(trace[idx].clone());
        }
        self.constants.get(name).cloned()
    }
}

/// An error raised by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// An input variable had no binding.
    UnboundVariable(String),
    /// A hole was encountered; holes have no semantics (§3.2.2) and must be filled
    /// before interpretation.
    HoleEncountered(String),
    /// An input binding had the wrong width.
    WidthMismatch {
        /// The variable name.
        name: String,
        /// Width declared in the program.
        expected: u32,
        /// Width of the bound value.
        found: u32,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnboundVariable(n) => write!(f, "unbound input `{n}`"),
            InterpError::HoleEncountered(n) => {
                write!(f, "hole `{n}` has no semantics; fill it before interpreting")
            }
            InterpError::WidthMismatch { name, expected, found } => {
                write!(f, "input `{name}` has width {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The environment chain used during interpretation: either the external inputs or a
/// primitive's binding map layered over the enclosing program (the `e'` construction
/// in the `Prim` rule of Fig. 4).
enum EnvCtx<'a> {
    External(&'a dyn Inputs),
    Prim { outer_prog: &'a Prog, outer_env: &'a EnvCtx<'a>, bindings: &'a BTreeMap<String, NodeId> },
}

impl Prog {
    /// Evaluates the program's root at clock cycle `time` under `inputs`.
    ///
    /// # Errors
    /// Returns an error if an input is unbound or mis-sized, or if the program still
    /// contains holes.
    pub fn interp(&self, inputs: &dyn Inputs, time: u32) -> Result<BitVec, InterpError> {
        self.interp_node(inputs, time, self.root())
    }

    /// Evaluates an arbitrary node at clock cycle `time` under `inputs`.
    pub fn interp_node(
        &self,
        inputs: &dyn Inputs,
        time: u32,
        node: NodeId,
    ) -> Result<BitVec, InterpError> {
        let env = EnvCtx::External(inputs);
        let mut memo = HashMap::new();
        eval(self, &env, time, node, &mut memo)
    }

    /// Evaluates the root at each of the cycles `0..=last`, returning one value per
    /// cycle. Useful for comparing pipelined designs over a window of time.
    pub fn interp_trace(&self, inputs: &dyn Inputs, last: u32) -> Result<Vec<BitVec>, InterpError> {
        (0..=last).map(|t| self.interp(inputs, t)).collect()
    }
}

fn eval(
    prog: &Prog,
    env: &EnvCtx<'_>,
    time: u32,
    id: NodeId,
    memo: &mut HashMap<(NodeId, u32), BitVec>,
) -> Result<BitVec, InterpError> {
    if let Some(v) = memo.get(&(id, time)) {
        return Ok(v.clone());
    }
    let node = prog.node(id).expect("node id belongs to the program");
    let value = match node {
        Node::BV(bv) => bv.clone(),
        Node::Hole { name, .. } => return Err(InterpError::HoleEncountered(name.clone())),
        Node::Var { name, width } => {
            let value = lookup(env, name, time, memo)?
                .ok_or_else(|| InterpError::UnboundVariable(name.clone()))?;
            if value.width() != *width {
                return Err(InterpError::WidthMismatch {
                    name: name.clone(),
                    expected: *width,
                    found: value.width(),
                });
            }
            value
        }
        Node::Reg { data, init } => {
            if time == 0 {
                init.clone()
            } else {
                eval(prog, env, time - 1, *data, memo)?
            }
        }
        Node::Op(op, args) => {
            let values: Result<Vec<BitVec>, InterpError> =
                args.iter().map(|&a| eval(prog, env, time, a, memo)).collect();
            let values = values?;
            let refs: Vec<&BitVec> = values.iter().collect();
            apply_public(*op, &refs)
        }
        Node::Prim(p) => {
            let inner_env =
                EnvCtx::Prim { outer_prog: prog, outer_env: env, bindings: &p.bindings };
            // Sub-program node ids are disjoint from ours (W2), so sharing the memo
            // table across levels is sound.
            eval(&p.semantics, &inner_env, time, p.semantics.root(), memo)?
        }
    };
    memo.insert((id, time), value.clone());
    Ok(value)
}

fn lookup(
    env: &EnvCtx<'_>,
    name: &str,
    time: u32,
    memo: &mut HashMap<(NodeId, u32), BitVec>,
) -> Result<Option<BitVec>, InterpError> {
    match env {
        EnvCtx::External(inputs) => Ok(inputs.get(name, time)),
        EnvCtx::Prim { outer_prog, outer_env, bindings } => match bindings.get(name) {
            None => Ok(None),
            Some(&outer_id) => eval(outer_prog, outer_env, time, outer_id, memo).map(Some),
        },
    }
}

/// Applies a combinational operator to concrete values. Shares semantics with the
/// `lr-smt` evaluator via the same `BitVec` operations.
pub(crate) fn apply_public(op: crate::BvOp, args: &[&BitVec]) -> BitVec {
    use crate::BvOp;
    match op {
        BvOp::Not => args[0].not(),
        BvOp::Neg => args[0].neg(),
        BvOp::And => args[0].and(args[1]),
        BvOp::Or => args[0].or(args[1]),
        BvOp::Xor => args[0].xor(args[1]),
        BvOp::Add => args[0].add(args[1]),
        BvOp::Sub => args[0].sub(args[1]),
        BvOp::Mul => args[0].mul(args[1]),
        BvOp::Udiv => args[0].udiv(args[1]),
        BvOp::Urem => args[0].urem(args[1]),
        BvOp::Shl => args[0].shl(args[1]),
        BvOp::Lshr => args[0].lshr(args[1]),
        BvOp::Ashr => args[0].ashr(args[1]),
        BvOp::Concat => args[0].concat(args[1]),
        BvOp::Extract { hi, lo } => args[0].extract(hi, lo),
        BvOp::ZeroExt { width } => args[0].zext(width),
        BvOp::SignExt { width } => args[0].sext(width),
        BvOp::Eq => BitVec::from_bool(args[0] == args[1]),
        BvOp::Ult => BitVec::from_bool(args[0].ult(args[1])),
        BvOp::Ule => BitVec::from_bool(args[0].ule(args[1])),
        BvOp::Slt => BitVec::from_bool(args[0].slt(args[1])),
        BvOp::Sle => BitVec::from_bool(args[0].sle(args[1])),
        BvOp::Ite => {
            if args[0].is_zero() {
                args[2].clone()
            } else {
                args[1].clone()
            }
        }
        BvOp::RedOr => args[0].reduce_or(),
        BvOp::RedAnd => args[0].reduce_and(),
        BvOp::RedXor => args[0].reduce_xor(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BvOp, HoleDomain, PrimInstance, ProgBuilder};

    fn inputs(pairs: &[(&str, u64, u32)]) -> StreamInputs {
        StreamInputs::from_constants(
            pairs.iter().map(|&(n, v, w)| (n.to_string(), BitVec::from_u64(v, w))),
        )
    }

    #[test]
    fn combinational_add_mul_and() {
        // out = (a + b) * c & d, the paper's running example, combinationally.
        let mut b = ProgBuilder::new("add_mul_and");
        let a = b.input("a", 16);
        let bb = b.input("b", 16);
        let c = b.input("c", 16);
        let d = b.input("d", 16);
        let sum = b.op2(BvOp::Add, a, bb);
        let prod = b.op2(BvOp::Mul, sum, c);
        let out = b.op2(BvOp::And, prod, d);
        let prog = b.finish(out);
        let env = inputs(&[("a", 3, 16), ("b", 5, 16), ("c", 7, 16), ("d", 0xFF, 16)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(((3 + 5) * 7) & 0xFF, 16));
    }

    #[test]
    fn registers_delay_by_one_cycle() {
        // out <= a (registered once): at t=0 the init value, at t>=1 the input.
        let mut b = ProgBuilder::new("reg1");
        let a = b.input("a", 8);
        let r = b.reg_init(a, BitVec::from_u64(0xAA, 8));
        let prog = b.finish(r);
        let env = inputs(&[("a", 5, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(0xAA, 8));
        assert_eq!(prog.interp(&env, 1).unwrap(), BitVec::from_u64(5, 8));
        assert_eq!(prog.interp(&env, 3).unwrap(), BitVec::from_u64(5, 8));
    }

    #[test]
    fn two_stage_pipeline() {
        // r <= a + b; out <= r   (the add_mul_and module shape from §2.1).
        let mut b = ProgBuilder::new("pipe2");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let sum = b.op2(BvOp::Add, a, bb);
        let r = b.reg(sum, 8);
        let out = b.reg(r, 8);
        let prog = b.finish(out);
        let env = inputs(&[("a", 3, 8), ("b", 4, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::zeros(8));
        assert_eq!(prog.interp(&env, 1).unwrap(), BitVec::zeros(8));
        assert_eq!(prog.interp(&env, 2).unwrap(), BitVec::from_u64(7, 8));
    }

    #[test]
    fn traces_drive_time_varying_inputs() {
        let mut b = ProgBuilder::new("tr");
        let a = b.input("a", 8);
        let r = b.reg(a, 8);
        let prog = b.finish(r);
        let mut env = StreamInputs::new();
        env.set_trace(
            "a",
            vec![BitVec::from_u64(1, 8), BitVec::from_u64(2, 8), BitVec::from_u64(3, 8)],
        );
        // Register shows the previous cycle's trace value.
        assert_eq!(prog.interp(&env, 1).unwrap(), BitVec::from_u64(1, 8));
        assert_eq!(prog.interp(&env, 2).unwrap(), BitVec::from_u64(2, 8));
        // Trace is held at its last value past the end.
        assert_eq!(prog.interp(&env, 5).unwrap(), BitVec::from_u64(3, 8));
        let outputs = prog.interp_trace(&env, 3).unwrap();
        assert_eq!(outputs.len(), 4);
    }

    #[test]
    fn counter_feedback_through_register() {
        // r <= r + 1 starting at 0: value at time t is t (mod 256).
        use crate::{Node, NodeId, Prog};
        let mut nodes = std::collections::BTreeMap::new();
        nodes.insert(NodeId(0), Node::BV(BitVec::from_u64(1, 8)));
        nodes.insert(NodeId(1), Node::Op(BvOp::Add, vec![NodeId(0), NodeId(2)]));
        nodes.insert(NodeId(2), Node::Reg { data: NodeId(1), init: BitVec::zeros(8) });
        let prog = Prog { name: "counter".into(), root: NodeId(2), nodes, inputs: vec![] };
        let env = StreamInputs::new();
        for t in 0..10 {
            assert_eq!(prog.interp(&env, t).unwrap(), BitVec::from_u64(t as u64, 8));
        }
    }

    #[test]
    fn primitive_semantics_are_interpreted_through_bindings() {
        // A primitive whose semantics is x + y, bound to inputs a and a constant.
        let mut b = ProgBuilder::new("outer");
        let a = b.input("a", 8);
        let k = b.constant_u64(10, 8);
        let mut inner = ProgBuilder::with_base_id("adder_sem", 100);
        let x = inner.var("x", 8);
        let y = inner.var("y", 8);
        let s = inner.op2(BvOp::Add, x, y);
        let sem = inner.finish(s);
        let prim = PrimInstance {
            module: "ADDER".into(),
            interface: "ADDER".into(),
            bindings: [("x".to_string(), a), ("y".to_string(), k)].into_iter().collect(),
            semantics: sem,
            param_names: vec![],
            output_port: "o".into(),
        };
        let p = b.prim(prim);
        let prog = b.finish(p);
        assert!(prog.well_formed().is_ok());
        let env = inputs(&[("a", 7, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(17, 8));
    }

    #[test]
    fn unbound_and_hole_errors() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let prog = b.finish(a);
        assert_eq!(
            prog.interp(&StreamInputs::new(), 0),
            Err(InterpError::UnboundVariable("a".to_string()))
        );

        let mut b = ProgBuilder::new("p");
        let h = b.hole("h", 8, HoleDomain::AnyConstant);
        let prog = b.finish(h);
        assert_eq!(
            prog.interp(&StreamInputs::new(), 0),
            Err(InterpError::HoleEncountered("h".to_string()))
        );
    }

    #[test]
    fn width_mismatch_error() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let prog = b.finish(a);
        let env = inputs(&[("a", 1, 4)]);
        assert!(matches!(prog.interp(&env, 0), Err(InterpError::WidthMismatch { .. })));
    }

    #[test]
    fn wiring_ops_behave_structurally() {
        let mut b = ProgBuilder::new("wires");
        let a = b.input("a", 8);
        let hi = b.extract(a, 7, 4);
        let lo = b.extract(a, 3, 0);
        let swapped = b.op2(BvOp::Concat, lo, hi);
        let prog = b.finish(swapped);
        let env = inputs(&[("a", 0xAB, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(0xBA, 8));
    }
}
