//! Post-synthesis cleanup: constant folding and dead-node elimination.
//!
//! Sketches in this reproduction may contain *selection logic* — hole-driven
//! multiplexers that let the solver choose, e.g., which design input feeds which DSP
//! port. Once synthesis fills the holes with constants, that logic is decidable at
//! compile time; [`Prog::simplified`] folds it away so the final implementation is a
//! clean structural program (a primitive instance plus wiring), which is what gets
//! counted by resource reports and emitted as Verilog.

use std::collections::BTreeMap;

use lr_bv::BitVec;

use crate::{Node, NodeId, Prog};

impl Prog {
    /// Returns an equivalent program with constant sub-expressions folded,
    /// constant-condition multiplexers resolved, and unreachable nodes removed.
    /// Primitive semantics sub-programs are left untouched.
    pub fn simplified(&self) -> Prog {
        let mut nodes: BTreeMap<NodeId, Node> = self.nodes.clone();
        let mut alias: BTreeMap<NodeId, NodeId> = BTreeMap::new();

        // A few ascending passes reach a fixpoint for builder-shaped programs
        // (operands almost always have smaller ids than their users).
        for _ in 0..3 {
            let ids: Vec<NodeId> = nodes.keys().copied().collect();
            for id in ids {
                let node = nodes[&id].clone();
                match node {
                    Node::Op(op, args) => {
                        let args: Vec<NodeId> = args.iter().map(|a| resolve(&alias, *a)).collect();
                        // Fold if-then-else with a constant condition into an alias.
                        if op == crate::BvOp::Ite {
                            if let Some(Node::BV(c)) = nodes.get(&args[0]) {
                                let target = if c.is_zero() { args[2] } else { args[1] };
                                alias.insert(id, resolve(&alias, target));
                                continue;
                            }
                        }
                        // Fold operators over all-constant operands.
                        let const_args: Option<Vec<BitVec>> = args
                            .iter()
                            .map(|a| match nodes.get(a) {
                                Some(Node::BV(bv)) => Some(bv.clone()),
                                _ => None,
                            })
                            .collect();
                        if let Some(values) = const_args {
                            let refs: Vec<&BitVec> = values.iter().collect();
                            nodes.insert(id, Node::BV(crate::interp::apply_public(op, &refs)));
                        } else {
                            nodes.insert(id, Node::Op(op, args));
                        }
                    }
                    Node::Reg { data, init } => {
                        nodes.insert(id, Node::Reg { data: resolve(&alias, data), init });
                    }
                    Node::Prim(mut p) => {
                        for target in p.bindings.values_mut() {
                            *target = resolve(&alias, *target);
                        }
                        nodes.insert(id, Node::Prim(p));
                    }
                    Node::BV(_) | Node::Var { .. } | Node::Hole { .. } => {}
                }
            }
        }

        let root = resolve(&alias, self.root);
        // Dead-node elimination: keep only nodes reachable from the root.
        let mut reachable = std::collections::BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !reachable.insert(id) {
                continue;
            }
            match &nodes[&id] {
                Node::Op(_, args) => stack.extend(args.iter().copied()),
                Node::Reg { data, .. } => stack.push(*data),
                Node::Prim(p) => stack.extend(p.bindings.values().copied()),
                _ => {}
            }
        }
        let nodes: BTreeMap<NodeId, Node> =
            nodes.into_iter().filter(|(id, _)| reachable.contains(id)).collect();
        Prog { name: self.name.clone(), root, nodes, inputs: self.inputs.clone() }
    }
}

fn resolve(alias: &BTreeMap<NodeId, NodeId>, mut id: NodeId) -> NodeId {
    while let Some(&next) = alias.get(&id) {
        if next == id {
            break;
        }
        id = next;
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BvOp, ProgBuilder, StreamInputs};

    #[test]
    fn folds_constant_selection_logic() {
        // out = (1 == 1) ? a : b  with some dead arithmetic attached.
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let one = b.constant_u64(1, 4);
        let also_one = b.constant_u64(1, 4);
        let cond = b.op2(BvOp::Eq, one, also_one);
        let dead = b.op2(BvOp::Mul, a, bb);
        let _unused = b.op2(BvOp::Add, dead, a);
        let out = b.mux(cond, a, bb);
        let prog = b.finish(out);
        let simplified = prog.simplified();
        // The mux and the dead arithmetic disappear; the root is the input itself.
        assert!(simplified.len() < prog.len());
        assert!(simplified
            .nodes()
            .all(|(_, n)| !matches!(n, Node::Op(BvOp::Mul | BvOp::Ite | BvOp::Eq, _))));
        let env = StreamInputs::from_constants([
            ("a".to_string(), BitVec::from_u64(7, 8)),
            ("b".to_string(), BitVec::from_u64(9, 8)),
        ]);
        assert_eq!(simplified.interp(&env, 0).unwrap(), BitVec::from_u64(7, 8));
    }

    #[test]
    fn folding_preserves_semantics_with_registers() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let two = b.constant_u64(2, 8);
        let three = b.constant_u64(3, 8);
        let six = b.op2(BvOp::Mul, two, three);
        let sum = b.op2(BvOp::Add, a, six);
        let r = b.reg(sum, 8);
        let prog = b.finish(r);
        let simplified = prog.simplified();
        assert!(simplified.well_formed().is_ok());
        let env = StreamInputs::from_constants([("a".to_string(), BitVec::from_u64(10, 8))]);
        for t in 0..3 {
            assert_eq!(prog.interp(&env, t).unwrap(), simplified.interp(&env, t).unwrap());
        }
        // The 2*3 multiplication was folded to a constant.
        assert!(simplified.nodes().all(|(_, n)| !matches!(n, Node::Op(BvOp::Mul, _))));
    }

    #[test]
    fn already_simple_programs_are_unchanged_semantically() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 4);
        let bbv = b.input("b", 4);
        let x = b.op2(BvOp::Xor, a, bbv);
        let prog = b.finish(x);
        let s = prog.simplified();
        assert_eq!(s.len(), prog.len());
        assert_eq!(s.root(), prog.root());
    }

    mod properties {
        //! `Prog::simplified` over *randomly generated* well-formed programs —
        //! not just the hand-built cases above: simplification must preserve
        //! well-formedness and stream semantics for any program shape.

        use super::super::*;
        use crate::{BvOp, ProgBuilder, StreamInputs};
        use lr_bv::BitVec;
        use proptest::prelude::*;

        /// One straight-line instruction over earlier nodes: the generator builds
        /// a DAG by construction, so every program is well-formed.
        #[derive(Debug, Clone)]
        enum Instr {
            Const(u64),
            Un(u8, usize),
            Bin(u8, usize, usize),
            Mux(usize, usize, usize),
            Reg(usize),
        }

        const WIDTH: u32 = 8;

        fn instr_strategy() -> impl Strategy<Value = Instr> {
            prop_oneof![
                (0u64..=0xff).prop_map(Instr::Const),
                (0u8..3, 0usize..64).prop_map(|(op, a)| Instr::Un(op, a)),
                (0u8..8, 0usize..64, 0usize..64).prop_map(|(op, a, b)| Instr::Bin(op, a, b)),
                (0usize..64, 0usize..64, 0usize..64).prop_map(|(c, t, e)| Instr::Mux(c, t, e)),
                (0usize..64).prop_map(Instr::Reg),
            ]
        }

        /// Realizes the instruction list as a well-formed 8-bit program over
        /// inputs `a`, `b`, `c`. Operand indices wrap over the nodes built so
        /// far; every node already built has width 8 except the 1-bit comparison
        /// results tracked in `one_bit`, which only mux conditions may consume.
        fn build(instrs: &[Instr]) -> Prog {
            let mut b = ProgBuilder::new("prop_prog");
            let mut wide: Vec<NodeId> = Vec::new();
            let mut one_bit: Vec<NodeId> = Vec::new();
            for name in ["a", "b", "c"] {
                wide.push(b.input(name, WIDTH));
            }
            for instr in instrs {
                let pick = |nodes: &[NodeId], i: usize| nodes[i % nodes.len()];
                match instr {
                    Instr::Const(v) => wide.push(b.constant_u64(*v, WIDTH)),
                    Instr::Un(op, a) => {
                        let a = pick(&wide, *a);
                        let op = match op % 3 {
                            0 => BvOp::Not,
                            1 => BvOp::Neg,
                            _ => {
                                let low = b.extract(a, 3, 0);
                                wide.push(b.zext(low, WIDTH));
                                continue;
                            }
                        };
                        wide.push(b.op1(op, a));
                    }
                    Instr::Bin(op, x, y) => {
                        let x = pick(&wide, *x);
                        let y = pick(&wide, *y);
                        match op % 8 {
                            0 => wide.push(b.op2(BvOp::Add, x, y)),
                            1 => wide.push(b.op2(BvOp::Sub, x, y)),
                            2 => wide.push(b.op2(BvOp::Mul, x, y)),
                            3 => wide.push(b.op2(BvOp::And, x, y)),
                            4 => wide.push(b.op2(BvOp::Or, x, y)),
                            5 => wide.push(b.op2(BvOp::Xor, x, y)),
                            6 => wide.push(b.op2(BvOp::Shl, x, y)),
                            _ => one_bit.push(b.op2(BvOp::Ult, x, y)),
                        }
                    }
                    Instr::Mux(c, t, e) => {
                        if one_bit.is_empty() {
                            continue;
                        }
                        let c = pick(&one_bit, *c);
                        let t = pick(&wide, *t);
                        let e = pick(&wide, *e);
                        wide.push(b.mux(c, t, e));
                    }
                    Instr::Reg(d) => {
                        let d = pick(&wide, *d);
                        wide.push(b.reg(d, WIDTH));
                    }
                }
            }
            let root = *wide.last().expect("inputs guarantee at least one node");
            b.finish(root)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn simplified_preserves_wf_and_semantics(
                instrs in proptest::collection::vec(instr_strategy(), 1..24),
                inputs in proptest::collection::vec((0u64..=0xff, 0u64..=0xff, 0u64..=0xff), 3),
            ) {
                let prog = build(&instrs);
                prop_assert!(prog.well_formed().is_ok(), "generator must produce wf programs");
                let simplified = prog.simplified();
                prop_assert!(
                    simplified.well_formed().is_ok(),
                    "simplification broke well-formedness: {:?}",
                    simplified.well_formed()
                );
                prop_assert!(simplified.len() <= prog.len(), "simplification must not grow programs");
                for (a, bv, c) in inputs {
                    let env = StreamInputs::from_constants([
                        ("a".to_string(), BitVec::from_u64(a, WIDTH)),
                        ("b".to_string(), BitVec::from_u64(bv, WIDTH)),
                        ("c".to_string(), BitVec::from_u64(c, WIDTH)),
                    ]);
                    for t in 0..3 {
                        prop_assert_eq!(
                            prog.interp(&env, t).unwrap(),
                            simplified.interp(&env, t).unwrap(),
                            "semantics diverged at cycle {} for inputs ({}, {}, {})", t, a, bv, c
                        );
                    }
                }
            }
        }
    }
}
