//! Symbolic interpretation of ℒlr programs into `lr-smt` terms.
//!
//! This is the bridge between the IR and the solver: running the Fig. 4 interpreter
//! with *symbolic* inputs produces, for each clock cycle `t`, a QF_BV term describing
//! the program's output at `t`. The synthesis engine (`lr-synth`) uses it twice per
//! query — once for the behavioral specification and once for the sketch — and then
//! asserts the two terms equal (the synthesis condition of §3.3).
//!
//! Naming scheme:
//! * input `x` at cycle `t` becomes the term variable `x@t`;
//! * hole `h` becomes the term variable `hole!h` (holes are time-invariant).

use std::collections::{BTreeMap, HashMap};

use lr_smt::{TermId, TermPool};

use crate::interp::Inputs;
use crate::{HoleDomain, Node, NodeId, Prog};

/// Name of the term variable standing for input `name` at cycle `time`.
pub fn input_var_name(name: &str, time: u32) -> String {
    format!("{name}@{time}")
}

/// Name of the term variable standing for hole `name`.
pub fn hole_var_name(name: &str) -> String {
    format!("hole!{name}")
}

/// If `term_name` names a hole variable, the hole's name.
pub fn parse_hole_var(term_name: &str) -> Option<&str> {
    term_name.strip_prefix("hole!")
}

/// If `term_name` names an input variable, the `(input, time)` pair.
pub fn parse_input_var(term_name: &str) -> Option<(&str, u32)> {
    let (name, time) = term_name.rsplit_once('@')?;
    time.parse().ok().map(|t| (name, t))
}

enum EnvCtx<'a> {
    External,
    Prim { outer_prog: &'a Prog, outer_env: &'a EnvCtx<'a>, bindings: &'a BTreeMap<String, NodeId> },
}

/// Options controlling symbolic interpretation.
#[derive(Clone, Default)]
pub struct SymbolicOptions<'a> {
    /// If provided, inputs found here are emitted as constants instead of symbolic
    /// variables (used by the CEGIS synthesis step, where counterexample inputs are
    /// concrete but holes stay symbolic).
    pub concrete_inputs: Option<&'a dyn Inputs>,
}

impl std::fmt::Debug for SymbolicOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicOptions")
            .field("concrete_inputs", &self.concrete_inputs.is_some())
            .finish()
    }
}

impl Prog {
    /// Builds the QF_BV term describing the root's value at clock cycle `time`, with
    /// all inputs symbolic.
    pub fn to_term(&self, pool: &mut TermPool, time: u32) -> TermId {
        self.to_term_with(pool, time, &SymbolicOptions::default())
    }

    /// Builds the QF_BV term for the root at `time` with explicit options.
    pub fn to_term_with(
        &self,
        pool: &mut TermPool,
        time: u32,
        options: &SymbolicOptions<'_>,
    ) -> TermId {
        let mut memo = HashMap::new();
        build(self, &EnvCtx::External, pool, time, self.root(), options, &mut memo)
    }

    /// Builds 1-bit constraint terms restricting every hole variable to its domain
    /// (the map `h` of §3.1). The synthesis engine asserts these alongside the
    /// equivalence obligations.
    pub fn hole_domain_constraints(&self, pool: &mut TermPool) -> Vec<TermId> {
        let mut out = Vec::new();
        for hole in self.holes() {
            let var = pool.var(&hole_var_name(&hole.name), hole.width);
            match &hole.domain {
                HoleDomain::AnyConstant => {}
                HoleDomain::Choice(choices) => {
                    let mut any = pool.false_();
                    for choice in choices {
                        let c = pool.constant(choice.clone());
                        let eq = pool.eq(var, c);
                        any = pool.or(any, eq);
                    }
                    out.push(any);
                }
                HoleDomain::LessThan(bound) => {
                    let b = pool.constant(bound.clone());
                    out.push(pool.ult(var, b));
                }
            }
        }
        out
    }

    /// The names of the symbolic input variables the term for cycle `time` may
    /// mention (every declared/free input at every cycle up to `time`).
    pub fn symbolic_input_names(&self, time: u32) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        for (name, width) in self.free_vars() {
            for t in 0..=time {
                out.push((input_var_name(&name, t), width));
            }
        }
        out
    }
}

fn build(
    prog: &Prog,
    env: &EnvCtx<'_>,
    pool: &mut TermPool,
    time: u32,
    id: NodeId,
    options: &SymbolicOptions<'_>,
    memo: &mut HashMap<(NodeId, u32), TermId>,
) -> TermId {
    if let Some(&t) = memo.get(&(id, time)) {
        return t;
    }
    let node = prog.node(id).expect("node id belongs to the program");
    let term = match node {
        Node::BV(bv) => pool.constant(bv.clone()),
        Node::Hole { name, width, .. } => pool.var(&hole_var_name(name), *width),
        Node::Var { name, width } => {
            resolve_var(prog, env, pool, time, name, *width, options, memo)
        }
        Node::Reg { data, init } => {
            if time == 0 {
                pool.constant(init.clone())
            } else {
                build(prog, env, pool, time - 1, *data, options, memo)
            }
        }
        Node::Op(op, args) => {
            let arg_terms: Vec<TermId> =
                args.iter().map(|&a| build(prog, env, pool, time, a, options, memo)).collect();
            pool.mk_op(*op, arg_terms)
        }
        Node::Prim(p) => {
            let inner_env =
                EnvCtx::Prim { outer_prog: prog, outer_env: env, bindings: &p.bindings };
            build(&p.semantics, &inner_env, pool, time, p.semantics.root(), options, memo)
        }
    };
    memo.insert((id, time), term);
    term
}

#[allow(clippy::too_many_arguments)]
fn resolve_var(
    prog: &Prog,
    env: &EnvCtx<'_>,
    pool: &mut TermPool,
    time: u32,
    name: &str,
    width: u32,
    options: &SymbolicOptions<'_>,
    memo: &mut HashMap<(NodeId, u32), TermId>,
) -> TermId {
    let _ = prog;
    match env {
        EnvCtx::External => {
            if let Some(inputs) = options.concrete_inputs {
                if let Some(value) = inputs.get(name, time) {
                    assert_eq!(value.width(), width, "concrete input `{name}` has wrong width");
                    return pool.constant(value);
                }
            }
            pool.var(&input_var_name(name, time), width)
        }
        EnvCtx::Prim { outer_prog, outer_env, bindings } => match bindings.get(name) {
            Some(&outer_id) => build(outer_prog, outer_env, pool, time, outer_id, options, memo),
            None => pool.var(&input_var_name(name, time), width),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::StreamInputs;
    use crate::{BvOp, ProgBuilder};
    use lr_smt::{BvSolver, SatResult};

    #[test]
    fn naming_helpers_roundtrip() {
        assert_eq!(input_var_name("a", 3), "a@3");
        assert_eq!(parse_input_var("a@3"), Some(("a", 3)));
        assert_eq!(parse_input_var("nope"), None);
        assert_eq!(hole_var_name("AREG"), "hole!AREG");
        assert_eq!(parse_hole_var("hole!AREG"), Some("AREG"));
        assert_eq!(parse_hole_var("a@3"), None);
    }

    #[test]
    fn symbolic_term_matches_concrete_interp() {
        // out = (a + b) & c with a register stage.
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let c = b.input("c", 8);
        let sum = b.op2(BvOp::Add, a, bb);
        let masked = b.op2(BvOp::And, sum, c);
        let r = b.reg(masked, 8);
        let prog = b.finish(r);

        let mut env = StreamInputs::new();
        env.set_constant("a", BitVec::from_u64(9, 8));
        env.set_constant("b", BitVec::from_u64(6, 8));
        env.set_constant("c", BitVec::from_u64(0x0F, 8));
        let concrete = prog.interp(&env, 1).unwrap();

        let mut pool = TermPool::new();
        let term = prog.to_term(&mut pool, 1);
        let smt_env: lr_smt::Env = [
            ("a@0".to_string(), BitVec::from_u64(9, 8)),
            ("b@0".to_string(), BitVec::from_u64(6, 8)),
            ("c@0".to_string(), BitVec::from_u64(0x0F, 8)),
        ]
        .into_iter()
        .collect();
        assert_eq!(pool.eval(term, &smt_env).unwrap(), concrete);
    }

    #[test]
    fn concrete_inputs_substitute_constants() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let h = b.hole("k", 8, HoleDomain::AnyConstant);
        let sum = b.op2(BvOp::Add, a, h);
        let prog = b.finish(sum);

        let mut env = StreamInputs::new();
        env.set_constant("a", BitVec::from_u64(5, 8));
        let mut pool = TermPool::new();
        let options = SymbolicOptions { concrete_inputs: Some(&env) };
        let term = prog.to_term_with(&mut pool, 0, &options);
        // The only free variable left should be the hole.
        let smt_env: lr_smt::Env =
            [("hole!k".to_string(), BitVec::from_u64(3, 8))].into_iter().collect();
        assert_eq!(pool.eval(term, &smt_env).unwrap(), BitVec::from_u64(8, 8));
    }

    #[test]
    fn hole_constraints_restrict_choices() {
        let mut b = ProgBuilder::new("p");
        let h = b.hole(
            "mode",
            2,
            HoleDomain::Choice(vec![BitVec::from_u64(1, 2), BitVec::from_u64(2, 2)]),
        );
        let prog = b.finish(h);
        let mut pool = TermPool::new();
        let constraints = prog.hole_domain_constraints(&mut pool);
        assert_eq!(constraints.len(), 1);
        // mode == 0 should violate the constraint, mode == 2 should satisfy it.
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, constraints[0]);
        let hole = pool.var(&hole_var_name("mode"), 2);
        let zero = pool.zero(2);
        let is_zero = pool.eq(hole, zero);
        solver.assert_true(&pool, is_zero);
        assert_eq!(solver.check(&pool), SatResult::Unsat);

        let mut solver = BvSolver::new();
        let constraints = prog.hole_domain_constraints(&mut pool);
        solver.assert_true(&pool, constraints[0]);
        let two = pool.constant(BitVec::from_u64(2, 2));
        let is_two = pool.eq(hole, two);
        solver.assert_true(&pool, is_two);
        assert_eq!(solver.check(&pool), SatResult::Sat);
    }

    #[test]
    fn registers_reference_earlier_cycle_inputs() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 4);
        let r = b.reg(a, 4);
        let prog = b.finish(r);
        let mut pool = TermPool::new();
        let term = prog.to_term(&mut pool, 2);
        // The value at cycle 2 is the input at cycle 1.
        let d = pool.display(term);
        assert!(d.contains("a@1"), "term should reference a@1, got {d}");
        // At cycle 0 the register shows its initial value.
        let term0 = prog.to_term(&mut pool, 0);
        assert_eq!(pool.as_const(term0), Some(&BitVec::zeros(4)));
    }

    #[test]
    fn symbolic_input_names_enumerate_cycles() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 4);
        let prog = b.finish(a);
        let names = prog.symbolic_input_names(2);
        assert_eq!(
            names,
            vec![("a@0".to_string(), 4), ("a@1".to_string(), 4), ("a@2".to_string(), 4)]
        );
    }

    use crate::HoleDomain;
    use lr_bv::BitVec;
}
