//! Formatting and parsing of [`BitVec`] values.
//!
//! The textual forms follow Verilog sized-literal syntax (`16'h00ff`, `4'b1010`,
//! `8'd255`), which is what both the mini-HDL frontend and the structural Verilog
//! emitter use.

use std::fmt;
use std::str::FromStr;

use crate::BitVec;

/// An error produced when parsing a bitvector literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVecError {
    message: String,
}

impl ParseBitVecError {
    fn new(message: impl Into<String>) -> Self {
        ParseBitVecError { message: message.into() }
    }
}

impl fmt::Display for ParseBitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bitvector literal: {}", self.message)
    }
}

impl std::error::Error for ParseBitVecError {}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{}", self.width(), self.to_hex_string())
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{}", self.width(), self.to_hex_string())
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex_string())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bin_string())
    }
}

impl BitVec {
    /// Hexadecimal digits of the value, most significant first, with enough digits
    /// to cover the full width.
    pub fn to_hex_string(&self) -> String {
        let digits = (self.width() as usize).div_ceil(4);
        let mut s = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let lo = (d * 4) as u32;
            let hi = ((d * 4 + 3) as u32).min(self.width() - 1);
            let nibble = self.extract(hi, lo).low_u64();
            s.push(char::from_digit(nibble as u32, 16).unwrap());
        }
        s
    }

    /// Binary digits of the value, most significant first.
    pub fn to_bin_string(&self) -> String {
        (0..self.width()).rev().map(|i| if self.bit(i) { '1' } else { '0' }).collect()
    }

    /// Renders as a Verilog sized hexadecimal literal, e.g. `16'h00ff`.
    pub fn to_verilog_literal(&self) -> String {
        format!("{}'h{}", self.width(), self.to_hex_string())
    }

    /// Parses a Verilog sized literal (`<width>'<base><digits>`, bases `b`/`d`/`h`).
    ///
    /// # Errors
    /// Returns an error if the syntax is malformed, the width is zero, or a digit is
    /// invalid for the base.
    pub fn parse_verilog(text: &str) -> Result<BitVec, ParseBitVecError> {
        let text = text.trim().replace('_', "");
        let Some(tick) = text.find('\'') else {
            return Err(ParseBitVecError::new(format!("missing ' in `{text}`")));
        };
        let width: u32 = text[..tick]
            .parse()
            .map_err(|_| ParseBitVecError::new(format!("bad width in `{text}`")))?;
        if width == 0 {
            return Err(ParseBitVecError::new("zero width"));
        }
        let rest = &text[tick + 1..];
        let mut chars = rest.chars();
        let base =
            chars.next().ok_or_else(|| ParseBitVecError::new("missing base"))?.to_ascii_lowercase();
        let digits: String = chars.collect();
        if digits.is_empty() {
            return Err(ParseBitVecError::new("missing digits"));
        }
        match base {
            'b' => Self::parse_radix(&digits, 1, width),
            'h' => Self::parse_radix(&digits, 4, width),
            'd' => {
                let mut acc = BitVec::zeros(width);
                let ten = BitVec::from_u64(10, width);
                for ch in digits.chars() {
                    let d = ch.to_digit(10).ok_or_else(|| {
                        ParseBitVecError::new(format!("bad decimal digit `{ch}`"))
                    })?;
                    acc = acc.mul(&ten).add(&BitVec::from_u64(d as u64, width));
                }
                Ok(acc)
            }
            other => Err(ParseBitVecError::new(format!("unknown base `{other}`"))),
        }
    }

    fn parse_radix(
        digits: &str,
        bits_per_digit: u32,
        width: u32,
    ) -> Result<BitVec, ParseBitVecError> {
        let radix = 1u32 << bits_per_digit;
        let mut acc = BitVec::zeros(width);
        for ch in digits.chars() {
            // Treat Verilog x/z digits as zero: the paper's semantics-extraction pass
            // likewise requires converting x/z to two-state logic (§4.4).
            let d = if ch == 'x' || ch == 'z' || ch == 'X' || ch == 'Z' {
                0
            } else {
                ch.to_digit(radix).ok_or_else(|| {
                    ParseBitVecError::new(format!("bad digit `{ch}` for radix {radix}"))
                })?
            };
            acc = acc.shl_const(bits_per_digit);
            acc = acc.or(&BitVec::from_u64(d as u64, width));
        }
        Ok(acc)
    }
}

impl FromStr for BitVec {
    type Err = ParseBitVecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BitVec::parse_verilog(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_string() {
        assert_eq!(BitVec::from_u64(0xABCD, 16).to_hex_string(), "abcd");
        assert_eq!(BitVec::from_u64(0x5, 3).to_hex_string(), "5");
        assert_eq!(BitVec::from_u64(0, 9).to_hex_string(), "000");
    }

    #[test]
    fn bin_string() {
        assert_eq!(BitVec::from_u64(0b1010, 4).to_bin_string(), "1010");
    }

    #[test]
    fn verilog_literal_roundtrip() {
        let bv = BitVec::from_u64(0x1234, 16);
        let lit = bv.to_verilog_literal();
        assert_eq!(lit, "16'h1234");
        assert_eq!(BitVec::parse_verilog(&lit).unwrap(), bv);
    }

    #[test]
    fn parse_bases() {
        assert_eq!(BitVec::parse_verilog("4'b1010").unwrap(), BitVec::from_u64(10, 4));
        assert_eq!(BitVec::parse_verilog("8'd255").unwrap(), BitVec::from_u64(255, 8));
        assert_eq!(BitVec::parse_verilog("12'hABC").unwrap(), BitVec::from_u64(0xABC, 12));
        assert_eq!(BitVec::parse_verilog("16'h00_ff").unwrap(), BitVec::from_u64(0xFF, 16));
    }

    #[test]
    fn parse_x_z_as_zero() {
        assert_eq!(BitVec::parse_verilog("4'bxx10").unwrap(), BitVec::from_u64(0b0010, 4));
        assert_eq!(BitVec::parse_verilog("8'hzz").unwrap(), BitVec::from_u64(0, 8));
    }

    #[test]
    fn parse_errors() {
        assert!(BitVec::parse_verilog("abc").is_err());
        assert!(BitVec::parse_verilog("0'h0").is_err());
        assert!(BitVec::parse_verilog("4'q1").is_err());
        assert!(BitVec::parse_verilog("4'b").is_err());
        assert!(BitVec::parse_verilog("4'b2").is_err());
    }

    #[test]
    fn display_and_fromstr() {
        let bv: BitVec = "8'hff".parse().unwrap();
        assert_eq!(format!("{bv}"), "8'hff");
        assert_eq!(format!("{bv:?}"), "8'hff");
        assert_eq!(format!("{bv:x}"), "ff");
        assert_eq!(format!("{bv:b}"), "11111111");
    }
}
