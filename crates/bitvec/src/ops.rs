//! Arithmetic, logical, shift, comparison, and structural operations on [`BitVec`].
//!
//! Every binary operation panics if the operand widths differ (except `concat`,
//! `mul_full`, and the shift-by-bitvector forms, which are width-polymorphic by
//! definition). This matches SMT-LIB QF_BV, which is the theory the synthesis
//! queries are ultimately expressed in.

use crate::{limbs_for, BitVec};

impl BitVec {
    fn assert_same_width(&self, other: &BitVec, op: &str) {
        assert_eq!(
            self.width, other.width,
            "{op}: width mismatch ({} vs {})",
            self.width, other.width
        );
    }

    // ----- bitwise -----

    /// Bitwise AND.
    pub fn and(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other, "and");
        let mut out = self.clone();
        for (a, b) in out.limbs_mut().iter_mut().zip(other.limbs()) {
            *a &= *b;
        }
        out
    }

    /// Bitwise OR.
    pub fn or(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other, "or");
        let mut out = self.clone();
        for (a, b) in out.limbs_mut().iter_mut().zip(other.limbs()) {
            *a |= *b;
        }
        out
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other, "xor");
        let mut out = self.clone();
        for (a, b) in out.limbs_mut().iter_mut().zip(other.limbs()) {
            *a ^= *b;
        }
        out
    }

    /// Bitwise NOT.
    pub fn not(&self) -> BitVec {
        let mut out = self.clone();
        for a in out.limbs_mut().iter_mut() {
            *a = !*a;
        }
        out.mask_top();
        out
    }

    // ----- arithmetic -----

    /// Wrapping addition.
    pub fn add(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other, "add");
        let mut out = BitVec::zeros(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs().len() {
            let (s1, c1) = self.limbs()[i].overflowing_add(other.limbs()[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs_mut()[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
        out
    }

    /// Wrapping subtraction (`self - other`).
    pub fn sub(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other, "sub");
        self.add(&other.neg())
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> BitVec {
        self.not().add(&BitVec::from_u64(1, self.width))
    }

    /// Wrapping multiplication, result has the same width as the operands.
    pub fn mul(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other, "mul");
        self.mul_full(other).extract(self.width - 1, 0)
    }

    /// Full-precision unsigned multiplication; the result width is the sum of the
    /// operand widths. (Used by DSP models whose multipliers widen.)
    pub fn mul_full(&self, other: &BitVec) -> BitVec {
        let out_width = self.width + other.width;
        let mut acc = vec![0u64; limbs_for(out_width) + 1];
        for (i, &a) in self.limbs().iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs().iter().enumerate() {
                if i + j >= acc.len() {
                    continue;
                }
                let cur = acc[i + j] as u128 + (a as u128) * (b as u128) + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs().len();
            while carry > 0 && k < acc.len() {
                let cur = acc[k] as u128 + carry;
                acc[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut out = BitVec::zeros(out_width);
        let n = out.limbs().len();
        out.limbs_mut().copy_from_slice(&acc[..n]);
        out.mask_top();
        out
    }

    /// Unsigned division; division by zero yields all-ones (SMT-LIB convention).
    pub fn udiv(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other, "udiv");
        if other.is_zero() {
            return BitVec::ones(self.width);
        }
        self.divmod(other).0
    }

    /// Unsigned remainder; remainder by zero yields the dividend (SMT-LIB convention).
    pub fn urem(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other, "urem");
        if other.is_zero() {
            return self.clone();
        }
        self.divmod(other).1
    }

    fn divmod(&self, other: &BitVec) -> (BitVec, BitVec) {
        // Simple bit-at-a-time long division; widths in this project are small
        // (<= ~96 bits for DSP accumulators), so this is plenty fast.
        let mut quotient = BitVec::zeros(self.width);
        let mut remainder = BitVec::zeros(self.width);
        for i in (0..self.width).rev() {
            remainder = remainder.shl_const(1);
            remainder = remainder.with_bit(0, self.bit(i));
            if !remainder.ult(other) {
                remainder = remainder.sub(other);
                quotient = quotient.with_bit(i, true);
            }
        }
        (quotient, remainder)
    }

    // ----- shifts -----

    /// Logical left shift by a constant amount. Shifts >= width produce zero.
    pub fn shl_const(&self, amount: u32) -> BitVec {
        if amount >= self.width {
            return BitVec::zeros(self.width);
        }
        let bits: Vec<bool> = (0..self.width)
            .map(|i| if i < amount { false } else { self.bit(i - amount) })
            .collect();
        BitVec::from_bits_lsb_first(&bits)
    }

    /// Logical right shift by a constant amount. Shifts >= width produce zero.
    pub fn lshr_const(&self, amount: u32) -> BitVec {
        if amount >= self.width {
            return BitVec::zeros(self.width);
        }
        let bits: Vec<bool> = (0..self.width)
            .map(|i| {
                let src = i + amount;
                if src < self.width {
                    self.bit(src)
                } else {
                    false
                }
            })
            .collect();
        BitVec::from_bits_lsb_first(&bits)
    }

    /// Arithmetic right shift by a constant amount.
    pub fn ashr_const(&self, amount: u32) -> BitVec {
        let sign = self.msb();
        let amount = amount.min(self.width);
        let bits: Vec<bool> = (0..self.width)
            .map(|i| {
                let src = i as u64 + amount as u64;
                if src < self.width as u64 {
                    self.bit(src as u32)
                } else {
                    sign
                }
            })
            .collect();
        BitVec::from_bits_lsb_first(&bits)
    }

    /// Logical left shift where the amount is itself a bitvector (any width).
    pub fn shl(&self, amount: &BitVec) -> BitVec {
        match amount.to_u64() {
            Some(a) if a < self.width as u64 => self.shl_const(a as u32),
            _ => BitVec::zeros(self.width),
        }
    }

    /// Logical right shift where the amount is itself a bitvector (any width).
    pub fn lshr(&self, amount: &BitVec) -> BitVec {
        match amount.to_u64() {
            Some(a) if a < self.width as u64 => self.lshr_const(a as u32),
            _ => BitVec::zeros(self.width),
        }
    }

    /// Arithmetic right shift where the amount is itself a bitvector (any width).
    pub fn ashr(&self, amount: &BitVec) -> BitVec {
        match amount.to_u64() {
            Some(a) if a < self.width as u64 => self.ashr_const(a as u32),
            _ => {
                if self.msb() {
                    BitVec::ones(self.width)
                } else {
                    BitVec::zeros(self.width)
                }
            }
        }
    }

    // ----- comparisons -----

    /// Unsigned less-than.
    pub fn ult(&self, other: &BitVec) -> bool {
        self.assert_same_width(other, "ult");
        for i in (0..self.limbs().len()).rev() {
            if self.limbs()[i] != other.limbs()[i] {
                return self.limbs()[i] < other.limbs()[i];
            }
        }
        false
    }

    /// Unsigned less-than-or-equal.
    pub fn ule(&self, other: &BitVec) -> bool {
        !other.ult(self)
    }

    /// Unsigned greater-than.
    pub fn ugt(&self, other: &BitVec) -> bool {
        other.ult(self)
    }

    /// Unsigned greater-than-or-equal.
    pub fn uge(&self, other: &BitVec) -> bool {
        !self.ult(other)
    }

    /// Signed less-than.
    pub fn slt(&self, other: &BitVec) -> bool {
        self.assert_same_width(other, "slt");
        match (self.msb(), other.msb()) {
            (true, false) => true,
            (false, true) => false,
            _ => self.ult(other),
        }
    }

    /// Signed less-than-or-equal.
    pub fn sle(&self, other: &BitVec) -> bool {
        !other.slt(self)
    }

    /// Signed greater-than.
    pub fn sgt(&self, other: &BitVec) -> bool {
        other.slt(self)
    }

    /// Signed greater-than-or-equal.
    pub fn sge(&self, other: &BitVec) -> bool {
        !self.slt(other)
    }

    // ----- structural -----

    /// Concatenation: `self` occupies the high bits, `other` the low bits
    /// (Verilog `{self, other}` / SMT-LIB `concat`).
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let width = self.width + other.width;
        let mut bits = Vec::with_capacity(width as usize);
        bits.extend(other.bits_lsb_first());
        bits.extend(self.bits_lsb_first());
        BitVec::from_bits_lsb_first(&bits)
    }

    /// Extracts bits `hi..=lo` (inclusive, `hi >= lo`) into a new bitvector of width
    /// `hi - lo + 1`.
    ///
    /// # Panics
    /// Panics if `hi < lo` or `hi >= self.width()`.
    pub fn extract(&self, hi: u32, lo: u32) -> BitVec {
        assert!(hi >= lo, "extract: hi ({hi}) < lo ({lo})");
        assert!(hi < self.width, "extract: hi ({hi}) out of range for width {}", self.width);
        let bits: Vec<bool> = (lo..=hi).map(|i| self.bit(i)).collect();
        BitVec::from_bits_lsb_first(&bits)
    }

    /// Zero-extends to `new_width`.
    ///
    /// # Panics
    /// Panics if `new_width < self.width()`.
    pub fn zext(&self, new_width: u32) -> BitVec {
        assert!(new_width >= self.width, "zext: cannot shrink {} -> {new_width}", self.width);
        let mut out = BitVec::zeros(new_width);
        for (i, limb) in self.limbs().iter().enumerate() {
            out.limbs_mut()[i] = *limb;
        }
        out
    }

    /// Sign-extends to `new_width`.
    pub fn sext(&self, new_width: u32) -> BitVec {
        assert!(new_width >= self.width, "sext: cannot shrink {} -> {new_width}", self.width);
        if !self.msb() {
            return self.zext(new_width);
        }
        let mut bits: Vec<bool> = self.bits_lsb_first().collect();
        bits.resize(new_width as usize, true);
        BitVec::from_bits_lsb_first(&bits)
    }

    /// Truncates or zero-extends to exactly `new_width`.
    pub fn resize_zext(&self, new_width: u32) -> BitVec {
        if new_width <= self.width {
            self.extract(new_width - 1, 0)
        } else {
            self.zext(new_width)
        }
    }

    /// Truncates or sign-extends to exactly `new_width`.
    pub fn resize_sext(&self, new_width: u32) -> BitVec {
        if new_width <= self.width {
            self.extract(new_width - 1, 0)
        } else {
            self.sext(new_width)
        }
    }

    // ----- reductions -----

    /// Reduction OR: 1-bit result, true if any bit is set.
    pub fn reduce_or(&self) -> BitVec {
        BitVec::from_bool(!self.is_zero())
    }

    /// Reduction AND: 1-bit result, true if all bits are set.
    pub fn reduce_and(&self) -> BitVec {
        BitVec::from_bool(self.is_all_ones())
    }

    /// Reduction XOR: 1-bit result, the parity of the popcount.
    pub fn reduce_xor(&self) -> BitVec {
        let ones: u32 = self.limbs().iter().map(|l| l.count_ones()).sum();
        BitVec::from_bool(ones % 2 == 1)
    }

    /// Number of set bits.
    pub fn popcount(&self) -> u32 {
        self.limbs().iter().map(|l| l.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(v: u64, w: u32) -> BitVec {
        BitVec::from_u64(v, w)
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(bv(0b1100, 4).and(&bv(0b1010, 4)), bv(0b1000, 4));
        assert_eq!(bv(0b1100, 4).or(&bv(0b1010, 4)), bv(0b1110, 4));
        assert_eq!(bv(0b1100, 4).xor(&bv(0b1010, 4)), bv(0b0110, 4));
        assert_eq!(bv(0b1100, 4).not(), bv(0b0011, 4));
    }

    #[test]
    fn add_wraps() {
        assert_eq!(bv(0xFF, 8).add(&bv(1, 8)), bv(0, 8));
        assert_eq!(bv(200, 8).add(&bv(100, 8)), bv(44, 8));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BitVec::from_u128(u64::MAX as u128, 80);
        let b = BitVec::from_u64(1, 80);
        assert_eq!(a.add(&b).to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(bv(5, 8).sub(&bv(7, 8)), bv(254, 8));
        assert_eq!(bv(0, 8).neg(), bv(0, 8));
        assert_eq!(bv(1, 8).neg(), bv(255, 8));
    }

    #[test]
    fn mul_wraps_and_widens() {
        assert_eq!(bv(20, 8).mul(&bv(20, 8)), bv(144, 8));
        assert_eq!(bv(20, 8).mul_full(&bv(20, 8)), bv(400, 16));
        let a = BitVec::from_u64(0xFFFF_FFFF_FFFF_FFFF, 64);
        let full = a.mul_full(&a);
        assert_eq!(full.width(), 128);
        assert_eq!(full.to_u128(), Some(0xFFFF_FFFF_FFFF_FFFFu128 * 0xFFFF_FFFF_FFFF_FFFFu128));
    }

    #[test]
    fn division() {
        assert_eq!(bv(100, 8).udiv(&bv(7, 8)), bv(14, 8));
        assert_eq!(bv(100, 8).urem(&bv(7, 8)), bv(2, 8));
        assert_eq!(bv(100, 8).udiv(&bv(0, 8)), BitVec::ones(8));
        assert_eq!(bv(100, 8).urem(&bv(0, 8)), bv(100, 8));
    }

    #[test]
    fn shifts_const() {
        assert_eq!(bv(0b0011, 4).shl_const(2), bv(0b1100, 4));
        assert_eq!(bv(0b1100, 4).lshr_const(2), bv(0b0011, 4));
        assert_eq!(bv(0b1000, 4).ashr_const(2), bv(0b1110, 4));
        assert_eq!(bv(0b0100, 4).ashr_const(2), bv(0b0001, 4));
        assert_eq!(bv(0b1111, 4).shl_const(4), bv(0, 4));
        assert_eq!(bv(0b1111, 4).lshr_const(10), bv(0, 4));
    }

    #[test]
    fn shifts_by_bitvec() {
        assert_eq!(bv(1, 8).shl(&bv(3, 4)), bv(8, 8));
        assert_eq!(bv(0x80, 8).lshr(&bv(7, 8)), bv(1, 8));
        assert_eq!(bv(0x80, 8).ashr(&bv(200, 8)), bv(0xFF, 8));
        assert_eq!(bv(0x40, 8).ashr(&bv(200, 8)), bv(0, 8));
    }

    #[test]
    fn comparisons() {
        assert!(bv(3, 8).ult(&bv(5, 8)));
        assert!(!bv(5, 8).ult(&bv(5, 8)));
        assert!(bv(5, 8).ule(&bv(5, 8)));
        assert!(bv(0xFF, 8).ugt(&bv(1, 8)));
        // 0xFF is -1 signed.
        assert!(bv(0xFF, 8).slt(&bv(1, 8)));
        assert!(bv(1, 8).sgt(&bv(0xFF, 8)));
        assert!(bv(0x80, 8).slt(&bv(0x7F, 8)));
        assert!(bv(5, 8).sge(&bv(5, 8)));
    }

    #[test]
    fn concat_extract() {
        let hi = bv(0xAB, 8);
        let lo = bv(0xCD, 8);
        let c = hi.concat(&lo);
        assert_eq!(c, bv(0xABCD, 16));
        assert_eq!(c.extract(15, 8), hi);
        assert_eq!(c.extract(7, 0), lo);
        assert_eq!(c.extract(11, 4), bv(0xBC, 8));
    }

    #[test]
    fn extensions() {
        assert_eq!(bv(0x80, 8).zext(16), bv(0x0080, 16));
        assert_eq!(bv(0x80, 8).sext(16), bv(0xFF80, 16));
        assert_eq!(bv(0x7F, 8).sext(16), bv(0x007F, 16));
        assert_eq!(bv(0xABCD, 16).resize_zext(8), bv(0xCD, 8));
        assert_eq!(bv(0x00CD, 16).resize_sext(8), bv(0xCD, 8));
    }

    #[test]
    fn reductions() {
        assert_eq!(bv(0, 8).reduce_or(), BitVec::from_bool(false));
        assert_eq!(bv(4, 8).reduce_or(), BitVec::from_bool(true));
        assert_eq!(bv(0xFF, 8).reduce_and(), BitVec::from_bool(true));
        assert_eq!(bv(0xFE, 8).reduce_and(), BitVec::from_bool(false));
        assert_eq!(bv(0b0111, 4).reduce_xor(), BitVec::from_bool(true));
        assert_eq!(bv(0b0110, 4).reduce_xor(), BitVec::from_bool(false));
        assert_eq!(bv(0b0110, 4).popcount(), 2);
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        bv(1, 4).add(&bv(1, 8));
    }

    #[test]
    #[should_panic]
    fn bad_extract_panics() {
        bv(1, 4).extract(1, 2);
    }
}
