//! # lr-bv: arbitrary-width bitvectors
//!
//! This crate provides [`BitVec`], a fixed-width (but arbitrarily wide) two's-complement
//! bitvector value type. It is the value domain shared by every other crate in the
//! Lakeroad reproduction: the ℒlr interpreter evaluates to `BitVec`s, the QF_BV term
//! graph folds constants over `BitVec`s, FPGA primitive models compute with `BitVec`s,
//! and counterexamples produced by the synthesis engine are environments of `BitVec`s.
//!
//! The representation is a little-endian vector of 64-bit limbs with all bits above
//! `width` kept at zero (a maintained invariant checked in debug builds).
//!
//! ```
//! use lr_bv::BitVec;
//!
//! let a = BitVec::from_u64(5, 8);
//! let b = BitVec::from_u64(7, 8);
//! assert_eq!(a.add(&b), BitVec::from_u64(12, 8));
//! assert_eq!(a.mul(&b), BitVec::from_u64(35, 8));
//! assert_eq!(a.concat(&b).width(), 16);
//! ```

mod format;
mod ops;

pub use format::ParseBitVecError;

/// A fixed-width bitvector value.
///
/// The width may be any non-zero number of bits. All operations are width-checked:
/// mixing operands of different widths panics (this mirrors the strictness of the
/// SMT-LIB QF_BV theory the paper's synthesis queries are expressed in).
///
/// The derived `Ord` compares `(width, limbs)` lexicographically. It is a *total*
/// order (used to keep e-graph rebuilds and canonical-form extraction
/// deterministic across processes), not the numeric order of the values —
/// use [`BitVec::ult`] and friends for numeric comparison.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVec {
    /// Width in bits. Always >= 1.
    width: u32,
    /// Little-endian limbs; bits above `width` are zero.
    limbs: Vec<u64>,
}

pub(crate) fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

impl BitVec {
    /// Creates a zero-valued bitvector of the given width.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn zeros(width: u32) -> Self {
        assert!(width > 0, "bitvector width must be non-zero");
        BitVec { width, limbs: vec![0; limbs_for(width)] }
    }

    /// Creates an all-ones bitvector of the given width.
    pub fn ones(width: u32) -> Self {
        let mut bv = Self::zeros(width);
        for limb in bv.limbs.iter_mut() {
            *limb = u64::MAX;
        }
        bv.mask_top();
        bv
    }

    /// Creates a bitvector of width `width` holding `value` truncated to that width.
    pub fn from_u64(value: u64, width: u32) -> Self {
        let mut bv = Self::zeros(width);
        bv.limbs[0] = value;
        bv.mask_top();
        bv
    }

    /// Creates a bitvector of width `width` holding `value` truncated to that width.
    pub fn from_u128(value: u128, width: u32) -> Self {
        let mut bv = Self::zeros(width);
        bv.limbs[0] = value as u64;
        if bv.limbs.len() > 1 {
            bv.limbs[1] = (value >> 64) as u64;
        }
        bv.mask_top();
        bv
    }

    /// Creates a bitvector from an i64, sign-extended/truncated to `width`.
    pub fn from_i64(value: i64, width: u32) -> Self {
        let mut bv = Self::zeros(width);
        let fill = if value < 0 { u64::MAX } else { 0 };
        bv.limbs[0] = value as u64;
        for limb in bv.limbs.iter_mut().skip(1) {
            *limb = fill;
        }
        bv.mask_top();
        bv
    }

    /// Creates a bitvector from booleans, least-significant bit first.
    ///
    /// # Panics
    /// Panics if `bits` is empty.
    pub fn from_bits_lsb_first(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "cannot build a zero-width bitvector");
        let mut bv = Self::zeros(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bv.limbs[i / 64] |= 1u64 << (i % 64);
            }
        }
        bv
    }

    /// Creates a single-bit bitvector from a boolean.
    pub fn from_bool(b: bool) -> Self {
        Self::from_u64(b as u64, 1)
    }

    /// The width of this bitvector in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `value`.
    pub fn with_bit(&self, i: u32, value: bool) -> Self {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        let mut out = self.clone();
        let limb = (i / 64) as usize;
        let mask = 1u64 << (i % 64);
        if value {
            out.limbs[limb] |= mask;
        } else {
            out.limbs[limb] &= !mask;
        }
        out
    }

    /// Iterates over bits, least significant first.
    pub fn bits_lsb_first(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.bit(i))
    }

    /// Returns true if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns true if every bit is one.
    pub fn is_all_ones(&self) -> bool {
        *self == Self::ones(self.width)
    }

    /// The most significant (sign) bit.
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// The value as `u64`, if the width is at most 64 bits; otherwise the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// The value as `u64` if it fits (all higher bits zero), otherwise `None`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs.iter().skip(1).all(|&l| l == 0) {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// The value as `u128` if it fits, otherwise `None`.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.iter().skip(2).all(|&l| l == 0) {
            let lo = self.limbs[0] as u128;
            let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
            Some(lo | (hi << 64))
        } else {
            None
        }
    }

    /// The value interpreted as a signed integer, if the width is at most 64 bits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.width > 64 {
            return None;
        }
        let raw = self.limbs[0];
        if self.width == 64 {
            return Some(raw as i64);
        }
        let sign = 1u64 << (self.width - 1);
        if raw & sign != 0 {
            Some((raw | !(sign | (sign - 1))) as i64)
        } else {
            Some(raw as i64)
        }
    }

    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    pub(crate) fn limbs_mut(&mut self) -> &mut Vec<u64> {
        &mut self.limbs
    }

    /// Zeroes any bits above `width` in the top limb (maintains the representation
    /// invariant after limb-wise arithmetic).
    pub(crate) fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
        debug_assert_eq!(self.limbs.len(), limbs_for(self.width));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert!(z.is_zero());
        assert_eq!(z.width(), 70);
        let o = BitVec::ones(70);
        assert!(o.is_all_ones());
        assert!(!o.is_zero());
        assert!(o.bit(69));
    }

    #[test]
    fn from_u64_truncates() {
        let bv = BitVec::from_u64(0xFF, 4);
        assert_eq!(bv.to_u64(), Some(0xF));
    }

    #[test]
    fn from_i64_sign_extends() {
        let bv = BitVec::from_i64(-1, 100);
        assert!(bv.is_all_ones());
        let bv = BitVec::from_i64(-2, 8);
        assert_eq!(bv.to_u64(), Some(0xFE));
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x1234_5678_9abc_def0_1111_2222_3333_4444u128;
        let bv = BitVec::from_u128(v, 128);
        assert_eq!(bv.to_u128(), Some(v));
    }

    #[test]
    fn bit_access() {
        let bv = BitVec::from_u64(0b1010, 4);
        assert!(!bv.bit(0));
        assert!(bv.bit(1));
        assert!(!bv.bit(2));
        assert!(bv.bit(3));
        assert!(bv.msb());
    }

    #[test]
    fn with_bit() {
        let bv = BitVec::zeros(8);
        let bv = bv.with_bit(3, true);
        assert_eq!(bv.to_u64(), Some(8));
        let bv = bv.with_bit(3, false);
        assert!(bv.is_zero());
    }

    #[test]
    fn bits_roundtrip() {
        let bv = BitVec::from_u64(0b1101_0010, 8);
        let bits: Vec<bool> = bv.bits_lsb_first().collect();
        assert_eq!(BitVec::from_bits_lsb_first(&bits), bv);
    }

    #[test]
    fn to_i64_signed() {
        assert_eq!(BitVec::from_u64(0xFF, 8).to_i64(), Some(-1));
        assert_eq!(BitVec::from_u64(0x7F, 8).to_i64(), Some(127));
        assert_eq!(BitVec::from_u64(0x80, 8).to_i64(), Some(-128));
        assert_eq!(BitVec::from_i64(-5, 64).to_i64(), Some(-5));
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        BitVec::zeros(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_bit_panics() {
        BitVec::zeros(4).bit(4);
    }

    #[test]
    fn from_bool() {
        assert_eq!(BitVec::from_bool(true).to_u64(), Some(1));
        assert_eq!(BitVec::from_bool(false).to_u64(), Some(0));
        assert_eq!(BitVec::from_bool(true).width(), 1);
    }
}
