//! Property-based tests for `lr-bv`: bitvector operations are checked against a
//! reference semantics over `u128` for widths up to 64 bits, and against structural
//! identities for wider vectors.

use lr_bv::BitVec;
use proptest::prelude::*;

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// Width 0 is rejected: a zero-width bitvector has no value representation, and
/// `BitVec::zeros` (which `from_u64` builds on) panics rather than defining one.
#[test]
#[should_panic]
fn from_u64_width_zero_is_rejected() {
    let _ = BitVec::from_u64(0, 0);
}

/// The extreme inputs at exactly the one-limb boundary survive a round-trip.
#[test]
fn from_u64_width_64_boundary_values() {
    for value in [0u64, 1, 0x8000_0000_0000_0000, u64::MAX] {
        let bv = BitVec::from_u64(value, 64);
        assert_eq!(bv.to_u128(), Some(value as u128));
        assert_eq!(bv.msb(), value >> 63 == 1);
    }
}

prop_compose! {
    fn width_and_two_values()(width in 1u32..=64)(
        width in Just(width),
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
    ) -> (u32, u64, u64) {
        (width, a, b)
    }
}

proptest! {
    #[test]
    fn add_matches_reference((width, a, b) in width_and_two_values()) {
        let x = BitVec::from_u64(a, width);
        let y = BitVec::from_u64(b, width);
        let expect = ((a as u128 & mask(width)) + (b as u128 & mask(width))) & mask(width);
        prop_assert_eq!(x.add(&y).to_u128().unwrap(), expect);
    }

    #[test]
    fn sub_matches_reference((width, a, b) in width_and_two_values()) {
        let x = BitVec::from_u64(a, width);
        let y = BitVec::from_u64(b, width);
        let expect = (a as u128 & mask(width)).wrapping_sub(b as u128 & mask(width)) & mask(width);
        prop_assert_eq!(x.sub(&y).to_u128().unwrap(), expect);
    }

    #[test]
    fn mul_matches_reference((width, a, b) in width_and_two_values()) {
        let x = BitVec::from_u64(a, width);
        let y = BitVec::from_u64(b, width);
        let expect = ((a as u128 & mask(width)) * (b as u128 & mask(width))) & mask(width);
        prop_assert_eq!(x.mul(&y).to_u128().unwrap(), expect);
    }

    #[test]
    fn mul_full_matches_reference((width, a, b) in width_and_two_values()) {
        let x = BitVec::from_u64(a, width);
        let y = BitVec::from_u64(b, width);
        let expect = (a as u128 & mask(width)) * (b as u128 & mask(width));
        prop_assert_eq!(x.mul_full(&y).to_u128().unwrap(), expect);
    }

    #[test]
    fn div_rem_matches_reference((width, a, b) in width_and_two_values()) {
        let am = (a as u128) & mask(width);
        let bm = (b as u128) & mask(width);
        let x = BitVec::from_u64(a, width);
        let y = BitVec::from_u64(b, width);
        match (am.checked_div(bm), am.checked_rem(bm)) {
            (Some(quot), Some(rem)) => {
                prop_assert_eq!(x.udiv(&y).to_u128().unwrap(), quot);
                prop_assert_eq!(x.urem(&y).to_u128().unwrap(), rem);
            }
            _ => {
                // Division by zero: SMT-LIB semantics (all ones; remainder = dividend).
                prop_assert!(x.udiv(&y).is_all_ones());
                prop_assert_eq!(x.urem(&y), x);
            }
        }
    }

    #[test]
    fn logic_matches_reference((width, a, b) in width_and_two_values()) {
        let x = BitVec::from_u64(a, width);
        let y = BitVec::from_u64(b, width);
        let (am, bm) = (a as u128 & mask(width), b as u128 & mask(width));
        prop_assert_eq!(x.and(&y).to_u128().unwrap(), am & bm);
        prop_assert_eq!(x.or(&y).to_u128().unwrap(), am | bm);
        prop_assert_eq!(x.xor(&y).to_u128().unwrap(), am ^ bm);
        prop_assert_eq!(x.not().to_u128().unwrap(), !am & mask(width));
    }

    #[test]
    fn compares_match_reference((width, a, b) in width_and_two_values()) {
        let x = BitVec::from_u64(a, width);
        let y = BitVec::from_u64(b, width);
        let (am, bm) = (a as u128 & mask(width), b as u128 & mask(width));
        prop_assert_eq!(x.ult(&y), am < bm);
        prop_assert_eq!(x.ule(&y), am <= bm);
        prop_assert_eq!(x.slt(&y), x.to_i64().unwrap() < y.to_i64().unwrap());
        prop_assert_eq!(x.sle(&y), x.to_i64().unwrap() <= y.to_i64().unwrap());
    }

    #[test]
    fn shifts_match_reference(width in 1u32..=64, a in 0u64..=u64::MAX, sh in 0u32..80) {
        let x = BitVec::from_u64(a, width);
        let am = a as u128 & mask(width);
        let shl = if sh >= width { 0 } else { (am << sh) & mask(width) };
        let lshr = if sh >= width { 0 } else { am >> sh };
        prop_assert_eq!(x.shl_const(sh).to_u128().unwrap(), shl);
        prop_assert_eq!(x.lshr_const(sh).to_u128().unwrap(), lshr);
    }

    #[test]
    fn ashr_preserves_sign(width in 2u32..=64, a in 0u64..=u64::MAX, sh in 0u32..80) {
        let x = BitVec::from_u64(a, width);
        let shifted = x.ashr_const(sh);
        if sh > 0 {
            prop_assert_eq!(shifted.msb(), x.msb());
        }
        if sh >= width {
            if x.msb() {
                prop_assert!(shifted.is_all_ones());
            } else {
                prop_assert!(shifted.is_zero());
            }
        }
    }

    #[test]
    fn concat_then_extract_is_identity(wa in 1u32..=48, wb in 1u32..=48, a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let x = BitVec::from_u64(a, wa);
        let y = BitVec::from_u64(b, wb);
        let c = x.concat(&y);
        prop_assert_eq!(c.width(), wa + wb);
        prop_assert_eq!(c.extract(wa + wb - 1, wb), x);
        prop_assert_eq!(c.extract(wb - 1, 0), y);
    }

    #[test]
    fn sext_zext_agree_on_nonnegative(width in 2u32..=63, a in 0u64..=u64::MAX, extra in 1u32..32) {
        let x = BitVec::from_u64(a & !(1 << (width - 1)), width);
        prop_assert_eq!(x.sext(width + extra), x.zext(width + extra));
    }

    #[test]
    fn verilog_literal_roundtrips(width in 1u32..=96, a in 0u64..=u64::MAX) {
        let x = BitVec::from_u64(a, width.min(64)).zext(width);
        let lit = x.to_verilog_literal();
        prop_assert_eq!(BitVec::parse_verilog(&lit).unwrap(), x);
    }

    #[test]
    fn neg_is_additive_inverse(width in 1u32..=96, a in 0u64..=u64::MAX) {
        let x = BitVec::from_u64(a, width.min(64)).zext(width);
        prop_assert!(x.add(&x.neg()).is_zero());
    }

    #[test]
    fn from_u64_truncates_below_width_64(value in 0u64..=u64::MAX, width in 1u32..64) {
        let bv = BitVec::from_u64(value, width);
        prop_assert_eq!(bv.width(), width);
        prop_assert_eq!(bv.to_u128().unwrap(), value as u128 & mask(width));
    }

    #[test]
    fn from_u64_width_64_is_lossless(value in 0u64..=u64::MAX) {
        let bv = BitVec::from_u64(value, 64);
        prop_assert_eq!(bv.width(), 64);
        prop_assert_eq!(bv.to_u128().unwrap(), value as u128);
    }

    #[test]
    fn wide_add_commutes_and_associates(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX, c in 0u64..=u64::MAX) {
        let w = 200;
        let x = BitVec::from_u64(a, 64).zext(w);
        let y = BitVec::from_u64(b, 64).zext(w);
        let z = BitVec::from_u64(c, 64).zext(w);
        prop_assert_eq!(x.add(&y), y.add(&x));
        prop_assert_eq!(x.add(&y).add(&z), x.add(&y.add(&z)));
    }
}
