//! Cone-of-influence partitioning: cutting a large AIG into bounded-fanin,
//! bounded-size combinational cones the sketch engine can map one at a time —
//! and stitching the per-cone mapped implementations back into one design.
//!
//! ## How the cut is chosen
//!
//! Walking the AND gates in dependency order, each gate accumulates the leaf
//! set and gate count of its (not yet cut) operands. When a gate would exceed
//! the configured bounds, its operand subtrees are *sealed* — turned into cone
//! roots — so the gate sees them as single leaves. Primary outputs and latch
//! next-state functions are sealed up front, since their values must exist as
//! stitchable signals. The result is a set of cones, each:
//!
//! * rooted at one AND variable, producing a **one-bit** value,
//! * reading at most `max_leaves` leaves (inputs, latches, or other cone
//!   roots), renamed canonically to `x0..xK` in DFS order so that isomorphic
//!   cones produce byte-identical specs (and therefore collide in the
//!   synthesis cache),
//! * containing at most `max_ands` AND gates.
//!
//! With `max_leaves` at or below the target architecture's LUT size, every
//! cone is a one-LUT mapping problem — a shape the CEGIS loop solves quickly
//! and deterministically.
//!
//! ## Stitching
//!
//! [`stitch`] rebuilds the full design: inputs and latches become ℒlr inputs
//! and registers, and each cone's mapped implementation is inlined (via
//! [`ProgBuilder::inline`]) with its `x<i>` inputs substituted by the nodes
//! computing the corresponding leaves. Cones are emitted in dependency order,
//! so a cone's leaves always exist by the time it is inlined.
//! [`verify_stitched`] then replays seeded random stimulus through both the
//! original AIG (bit-level simulation) and the stitched program (ℒlr
//! interpretation) and counts disagreements.

use std::collections::{BTreeMap, BTreeSet};

use lr_bv::BitVec;
use lr_ir::{BvOp, NodeId, Prog, ProgBuilder, StreamInputs};

use crate::gen::Rng;
use crate::{lit_node, Aig};

/// Bounds on a single cone.
#[derive(Debug, Clone, Copy)]
pub struct ConeOptions {
    /// Maximum leaves (cone inputs). Clamped to at least 2; set this to the
    /// target architecture's LUT size to make every cone a one-LUT problem.
    pub max_leaves: usize,
    /// Maximum AND gates inside one cone. Clamped to at least 1.
    pub max_ands: usize,
}

impl Default for ConeOptions {
    fn default() -> ConeOptions {
        ConeOptions { max_leaves: 4, max_ands: 32 }
    }
}

/// One combinational cone: a one-bit function of at most `max_leaves` leaves.
#[derive(Debug, Clone)]
pub struct Cone {
    /// The AND variable this cone computes.
    pub root: u32,
    /// The AIG variables feeding the cone, in canonical `x0..xK` order.
    pub leaves: Vec<u32>,
    /// AND gates inside the cone body.
    pub num_ands: usize,
    /// The cone as a one-bit ℒlr spec over inputs `x0..xK`.
    pub spec: Prog,
}

/// A complete cut of an AIG into cones.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The cones, in dependency order: any cone leaf that is itself a cone
    /// root appears earlier in the list.
    pub cones: Vec<Cone>,
    /// Total AND gates across all cone bodies. Shared logic that was cloned
    /// into several cones is counted once per clone, so this can exceed the
    /// source AIG's gate count.
    pub covered_ands: usize,
}

impl Partition {
    /// The largest leaf count over all cones.
    pub fn max_leaves_used(&self) -> usize {
        self.cones.iter().map(|c| c.leaves.len()).max().unwrap_or(0)
    }
}

/// Cuts `aig` into cones respecting `options`.
///
/// Every primary-output and latch-next AND variable becomes a cone root; gates
/// reachable from none of them are dropped. An AIG whose outputs are all
/// constants, inputs, or latches yields an empty partition — [`stitch`] still
/// produces the correct design.
pub fn partition(aig: &Aig, options: &ConeOptions) -> Partition {
    let max_leaves = options.max_leaves.max(2);
    let max_ands = options.max_ands.max(1);
    let first_and = aig.first_and_var();
    let idx = |var: u32| (var - first_and) as usize;

    // Cone roots the stitched design must expose as signals.
    let mut demand: BTreeSet<u32> = BTreeSet::new();
    for output in aig.outputs() {
        if aig.and_of(output.lit.var()).is_some() {
            demand.insert(output.lit.var());
        }
    }
    for latch in aig.latches() {
        if aig.and_of(latch.next.var()).is_some() {
            demand.insert(latch.next.var());
        }
    }

    let mut sealed = vec![false; aig.num_ands()];
    for &var in &demand {
        sealed[idx(var)] = true;
    }

    // Bottom-up over the dependency order: accumulate each gate's leaf set and
    // body size, sealing oversized operand subtrees into cone roots.
    let mut leaves: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); aig.num_ands()];
    let mut body: Vec<usize> = vec![0; aig.num_ands()];
    for &var in &aig.order {
        let gate = aig.ands()[idx(var)];
        let children = [gate.rhs0.var(), gate.rhs1.var()];
        let combine = |sealed: &[bool], leaves: &[BTreeSet<u32>], body: &[usize]| {
            let mut ls = BTreeSet::new();
            let mut size = 1usize;
            for &child in &children {
                if child == 0 {
                    continue; // Constants live inside the spec, not as leaves.
                } else if child >= first_and && !sealed[idx(child)] {
                    ls.extend(leaves[idx(child)].iter().copied());
                    size += body[idx(child)];
                } else {
                    ls.insert(child);
                }
            }
            (ls, size)
        };
        let (mut ls, mut size) = combine(&sealed, &leaves, &body);
        if ls.len() > max_leaves || size > max_ands {
            // Seal the fatter operand subtree first; sealing both always fits
            // (two leaves, one gate).
            let mut cands: Vec<u32> =
                children.iter().copied().filter(|&c| c >= first_and && !sealed[idx(c)]).collect();
            cands.sort_by_key(|&c| std::cmp::Reverse(leaves[idx(c)].len()));
            cands.dedup();
            for child in cands {
                sealed[idx(child)] = true;
                (ls, size) = combine(&sealed, &leaves, &body);
                if ls.len() <= max_leaves && size <= max_ands {
                    break;
                }
            }
        }
        leaves[idx(var)] = ls;
        body[idx(var)] = size;
    }

    // Keep only cones some demanded signal transitively reads.
    let mut needed: BTreeSet<u32> = demand.clone();
    let mut work: Vec<u32> = demand.into_iter().collect();
    while let Some(var) = work.pop() {
        for &leaf in &leaves[idx(var)] {
            if leaf >= first_and && needed.insert(leaf) {
                work.push(leaf);
            }
        }
    }

    // Emit in dependency order so stitching can run front to back.
    let topo_pos: BTreeMap<u32, usize> =
        aig.order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut roots: Vec<u32> = needed.into_iter().collect();
    roots.sort_by_key(|v| topo_pos[v]);

    let mut cones = Vec::with_capacity(roots.len());
    let mut covered_ands = 0;
    for root in roots {
        let cone = build_cone(aig, root, &leaves[idx(root)]);
        covered_ands += cone.num_ands;
        cones.push(cone);
    }
    Partition { cones, covered_ands }
}

/// Builds one cone's canonical spec by DFS from `root`, stopping at the
/// recorded leaf frontier. Leaves are named `x0..xK` in discovery order
/// (operand 0 explored before operand 1), which depends only on the cone's
/// shape — isomorphic cones get identical specs.
fn build_cone(aig: &Aig, root: u32, frontier: &BTreeSet<u32>) -> Cone {
    let mut b = ProgBuilder::new(format!("cone_v{root}"));
    let mut memo: BTreeMap<u32, NodeId> = BTreeMap::new();
    let mut leaves: Vec<u32> = Vec::new();
    let mut num_ands = 0usize;

    let mut stack: Vec<u32> = vec![root];
    while let Some(&var) = stack.last() {
        if memo.contains_key(&var) {
            stack.pop();
            continue;
        }
        if var == 0 {
            memo.insert(var, b.constant_u64(0, 1));
            stack.pop();
            continue;
        }
        if var != root
            && (aig.is_input_var(var) || aig.is_latch_var(var) || frontier.contains(&var))
        {
            let node = b.var(&format!("x{}", leaves.len()), 1);
            leaves.push(var);
            memo.insert(var, node);
            stack.pop();
            continue;
        }
        let gate = *aig.and_of(var).expect("interior cone nodes are AND gates");
        match (memo.get(&gate.rhs0.var()), memo.get(&gate.rhs1.var())) {
            (Some(&n0), Some(&n1)) => {
                let a = if gate.rhs0.negated() { b.op1(BvOp::Not, n0) } else { n0 };
                let x = if gate.rhs1.negated() { b.op1(BvOp::Not, n1) } else { n1 };
                memo.insert(var, b.op2(BvOp::And, a, x));
                num_ands += 1;
                stack.pop();
            }
            (None, _) => stack.push(gate.rhs0.var()),
            (_, None) => stack.push(gate.rhs1.var()),
        }
    }
    let root_node = memo[&root];
    Cone { root, leaves, num_ands, spec: b.finish(root_node) }
}

/// Reassembles a full design from per-cone mapped implementations.
///
/// `impls[i]` replaces `partition.cones[i]` and must be a one-bit program over
/// (a subset of) the inputs `x0..xK` — exactly the shape the mapper returns for
/// the cone's spec. Pass the cone specs themselves to get a reference stitching
/// for testing.
///
/// # Panics
/// Panics if the implementation count does not match the cone count, if a
/// substituted input's width is not 1, or if the AIG has no outputs.
pub fn stitch(aig: &Aig, partition: &Partition, impls: &[Prog]) -> Prog {
    assert_eq!(impls.len(), partition.cones.len(), "one implementation per cone");
    assert!(!aig.outputs().is_empty(), "cannot stitch an AIG without outputs");
    let mut b = ProgBuilder::new(format!("{}_stitched", aig.name()));
    let mut var_nodes = vec![None::<NodeId>; aig.num_vars()];
    for (i, name) in aig.input_names().iter().enumerate() {
        var_nodes[1 + i] = Some(b.input(name, 1));
    }
    let first_latch = 1 + aig.num_inputs();
    for (j, latch) in aig.latches().iter().enumerate() {
        let init = BitVec::from_u64(u64::from(latch.init), 1);
        var_nodes[first_latch + j] = Some(b.reg_placeholder_init(init));
    }
    for (cone, implementation) in partition.cones.iter().zip(impls) {
        let mut subst = BTreeMap::new();
        for (i, &leaf) in cone.leaves.iter().enumerate() {
            let node = lit_node(&mut b, &mut var_nodes, crate::Lit::new(leaf, false));
            subst.insert(format!("x{i}"), node);
        }
        var_nodes[cone.root as usize] = Some(b.inline(implementation, &subst));
    }
    for (j, latch) in aig.latches().iter().enumerate().rev() {
        let data = lit_node(&mut b, &mut var_nodes, latch.next);
        b.set_reg_data(var_nodes[first_latch + j].expect("latch node exists"), data);
    }
    let outputs = aig.outputs();
    let mut root = lit_node(&mut b, &mut var_nodes, outputs[0].lit);
    for output in &outputs[1..] {
        let bit = lit_node(&mut b, &mut var_nodes, output.lit);
        // High bits first: output i stays at bit i, matching `Aig::to_prog`.
        root = b.op2(BvOp::Concat, bit, root);
    }
    b.finish(root)
}

/// Outcome of replaying random stimulus through a stitched design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Independent random environments replayed.
    pub environments: usize,
    /// Clock cycles per environment.
    pub cycles: usize,
    /// Output-bit/cycle disagreements between AIG simulation and ℒlr
    /// interpretation. Zero means the stitched design matched everywhere.
    pub mismatches: usize,
}

impl VerifyReport {
    /// Whether every checked bit agreed.
    pub fn passed(&self) -> bool {
        self.mismatches == 0
    }
}

/// Replays `environments` seeded random stimulus sequences of `cycles` cycles
/// through both the original AIG (bit-level simulation) and the stitched
/// program (ℒlr interpretation), counting every output-bit disagreement.
///
/// Errors only if the stitched program fails to interpret — a malformed
/// stitching, not a functional mismatch.
pub fn verify_stitched(
    aig: &Aig,
    stitched: &Prog,
    seed: u64,
    environments: usize,
    cycles: usize,
) -> Result<VerifyReport, String> {
    let mut report = VerifyReport { environments, cycles, mismatches: 0 };
    if cycles == 0 {
        return Ok(report);
    }
    let mut rng = Rng::new(seed);
    for _ in 0..environments {
        let stimulus: Vec<Vec<bool>> =
            (0..cycles).map(|_| (0..aig.num_inputs()).map(|_| rng.bool()).collect()).collect();
        let expected = aig.simulate(&stimulus);
        let mut env = StreamInputs::new();
        for (i, name) in aig.input_names().iter().enumerate() {
            let trace = stimulus.iter().map(|s| BitVec::from_u64(u64::from(s[i]), 1)).collect();
            env.set_trace(name.clone(), trace);
        }
        let got = stitched
            .interp_trace(&env, cycles as u32 - 1)
            .map_err(|e| format!("stitched design failed to interpret: {e}"))?;
        for (t, want) in expected.iter().enumerate() {
            for (bit, &want_bit) in want.iter().enumerate() {
                if got[t].bit(bit as u32) != want_bit {
                    report.mismatches += 1;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_aig, GenConfig};

    #[test]
    fn partition_respects_bounds_and_orders_cones() {
        let options = ConeOptions { max_leaves: 4, max_ands: 8 };
        for seed in 0..6 {
            let aig = random_aig(seed, &GenConfig { inputs: 7, latches: 3, ands: 150, outputs: 5 });
            let partition = partition(&aig, &options);
            assert!(!partition.cones.is_empty());
            let mut roots_seen = BTreeSet::new();
            for cone in &partition.cones {
                assert!(
                    cone.leaves.len() <= 4,
                    "cone v{} has {} leaves",
                    cone.root,
                    cone.leaves.len()
                );
                assert!(cone.num_ands <= 8, "cone v{} has {} gates", cone.root, cone.num_ands);
                assert!(cone.spec.well_formed().is_ok());
                assert_eq!(cone.spec.free_vars().len(), cone.leaves.len());
                for (i, (name, width)) in cone.spec.free_vars().iter().enumerate() {
                    assert_eq!(name, &format!("x{i}"), "canonical leaf naming");
                    assert_eq!(*width, 1);
                }
                // Dependency order: every cone-root leaf was emitted earlier.
                for &leaf in &cone.leaves {
                    if aig.and_of(leaf).is_some() {
                        assert!(
                            roots_seen.contains(&leaf),
                            "cone v{} reads unstitched v{leaf}",
                            cone.root
                        );
                    }
                }
                roots_seen.insert(cone.root);
            }
        }
    }

    #[test]
    fn isomorphic_cones_get_identical_specs() {
        // Two disjoint copies of the same function: (a & b) & !(c & d).
        let text = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\nINPUT(h)\n\
OUTPUT(y0)\nOUTPUT(y1)\n\
t0 = AND(a, b)\nt1 = NAND(c, d)\ny0 = AND(t0, t1)\n\
u0 = AND(e, f)\nu1 = NAND(g, h)\ny1 = AND(u0, u1)\n";
        let aig = crate::parse::parse_bench(text).unwrap();
        let partition = partition(&aig, &ConeOptions::default());
        assert_eq!(partition.cones.len(), 2);
        let render = |cone: &Cone| format!("{:?}", cone.spec).replace(cone.spec.name(), "");
        assert_eq!(render(&partition.cones[0]), render(&partition.cones[1]));
    }

    #[test]
    fn identity_stitching_matches_the_aig_on_32_environments() {
        // The cone specs themselves are valid "mapped implementations"; the
        // stitched design must then be cycle-accurate against AIG simulation.
        for seed in [7u64, 1312] {
            let aig = random_aig(seed, &GenConfig { inputs: 9, latches: 4, ands: 300, outputs: 6 });
            let partition = partition(&aig, &ConeOptions { max_leaves: 4, max_ands: 16 });
            let impls: Vec<Prog> = partition.cones.iter().map(|c| c.spec.clone()).collect();
            let stitched = stitch(&aig, &partition, &impls);
            assert!(stitched.well_formed().is_ok(), "{:?}", stitched.well_formed());
            let report = verify_stitched(&aig, &stitched, seed ^ 0xF00, 32, 6).unwrap();
            assert!(report.passed(), "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn trivial_outputs_stitch_without_cones() {
        // Outputs that are an input, a latch, and a constant: no cone needed.
        let text = "INPUT(a)\nq = DFF(a)\nOUTPUT(a)\nOUTPUT(q)\n";
        let aig = crate::parse::parse_bench(text).unwrap();
        let partition = partition(&aig, &ConeOptions::default());
        assert!(partition.cones.is_empty());
        let stitched = stitch(&aig, &partition, &[]);
        let report = verify_stitched(&aig, &stitched, 5, 8, 5).unwrap();
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn stitching_a_wrong_implementation_is_caught() {
        let aig = random_aig(99, &GenConfig { inputs: 6, latches: 0, ands: 80, outputs: 3 });
        let partition = partition(&aig, &ConeOptions::default());
        let mut impls: Vec<Prog> = partition.cones.iter().map(|c| c.spec.clone()).collect();
        // Sabotage one cone: replace it with constant false... unless the cone
        // really is constant false, in which case constant true.
        let mut b = ProgBuilder::new("sabotage");
        let one = b.constant_u64(1, 1);
        let last = impls.len() - 1;
        impls[last] = b.finish(one);
        let stitched = stitch(&aig, &partition, &impls);
        let report = verify_stitched(&aig, &stitched, 4, 16, 4).unwrap();
        // The sabotaged cone feeds at least one output with probability ~1
        // over 16 environments; if this ever flakes the sabotage picked a
        // tautological cone, which random_aig(99) does not produce.
        assert!(!report.passed(), "sabotage went unnoticed");
    }
}
