//! Seeded random AIG generation — netlist-shaped stimulus for the cone
//! pipeline's tests, the scaling scenarios, and the CI experiment fixtures.

use crate::{Aig, AndGate, Latch, Lit, Output};

/// Shape of a generated netlist.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Primary input count (at least 1).
    pub inputs: u32,
    /// Latch count.
    pub latches: u32,
    /// AND gate count.
    pub ands: u32,
    /// Primary output count (at least 1).
    pub outputs: u32,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { inputs: 8, latches: 2, ands: 64, outputs: 4 }
    }
}

/// The same xorshift64* generator the serve-side scenarios use, kept private so
/// this crate stays dependency-free.
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Rng {
        // Avoid the all-zero fixed point.
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (Lemire-style, n > 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
    }

    pub(crate) fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Generates a random, valid AIG. The same `(seed, config)` pair always yields
/// the same netlist.
///
/// Gate operands are biased toward recent gates so the graph grows deep (real
/// netlists are chains, not shallow fans), and outputs observe the latest gates
/// so most of the graph stays live.
pub fn random_aig(seed: u64, config: &GenConfig) -> Aig {
    let inputs = config.inputs.max(1);
    let outputs = config.outputs.max(1);
    let mut rng = Rng::new(seed);
    let first_and = 1 + inputs + config.latches;

    let mut ands = Vec::with_capacity(config.ands as usize);
    for k in 0..config.ands {
        // Combinational operands: anything defined before this gate, minus the
        // constant. Bias half the draws toward the most recent quarter.
        let operand = |rng: &mut Rng| {
            let defined = first_and + k; // vars 1..defined are usable
            let var = if k > 0 && rng.bool() {
                let recent = (k / 4 + 1).min(k);
                first_and + k - 1 - rng.below(u64::from(recent)) as u32
            } else {
                1 + rng.below(u64::from(defined - 1)) as u32
            };
            Lit::new(var, rng.bool())
        };
        ands.push(AndGate { rhs0: operand(&mut rng), rhs1: operand(&mut rng) });
    }

    // Latch next-state and outputs may observe any variable, ANDs included.
    let total = first_and + config.ands;
    let any_lit = |rng: &mut Rng| Lit::new(1 + rng.below(u64::from(total - 1)) as u32, rng.bool());
    let latches =
        (0..config.latches).map(|_| Latch { next: any_lit(&mut rng), init: rng.bool() }).collect();
    let outs = (0..outputs)
        .map(|k| {
            // Observe the tail of the gate list so the bulk of the graph is in
            // some output's cone of influence.
            let lit = if config.ands > 0 {
                let tail = (config.ands / 2 + 1).min(config.ands);
                Lit::new(total - 1 - rng.below(u64::from(tail)) as u32, rng.bool())
            } else {
                any_lit(&mut rng)
            };
            Output { name: format!("o{k}"), lit }
        })
        .collect();

    let names = (0..inputs).map(|i| format!("i{i}")).collect();
    Aig::new(format!("rand_{seed:016x}"), names, latches, ands, outs)
        .expect("generated AIGs are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible_and_valid() {
        let config = GenConfig { inputs: 6, latches: 3, ands: 200, outputs: 5 };
        let a = random_aig(42, &config);
        let b = random_aig(42, &config);
        assert_eq!(a, b);
        assert_eq!(a.num_ands(), 200);
        assert_eq!(a.num_latches(), 3);
        let c = random_aig(43, &config);
        assert_ne!(a, c, "different seeds give different netlists");
    }

    #[test]
    fn generated_netlists_simulate_and_round_trip() {
        for seed in 0..8 {
            let aig = random_aig(seed, &GenConfig::default());
            let mut rng = Rng::new(seed ^ 0xDEAD);
            let stimulus: Vec<Vec<bool>> =
                (0..4).map(|_| (0..aig.num_inputs()).map(|_| rng.bool()).collect()).collect();
            let sim = aig.simulate(&stimulus);
            assert_eq!(sim.len(), 4);
            // Writers stay in sync with the generator.
            let ascii = crate::parse::parse_aag(&aig.to_aag()).unwrap();
            assert_eq!(ascii.simulate(&stimulus), sim);
            let binary = crate::parse::parse_aig_binary(&aig.to_aig_binary()).unwrap();
            assert_eq!(binary.simulate(&stimulus), sim);
        }
    }
}
