//! # lr-aig: the structural netlist frontend
//!
//! The paper's toolchain (§2) is fed behavioral designs a few operators wide;
//! real mapping workloads arrive as *structural* netlists — AIGER and-inverter
//! graphs or ISCAS-style `.bench` gate lists, thousands of nodes deep. This
//! crate is the bridge between those worlds:
//!
//! * [`parse::parse_aag`] / [`parse::parse_aig_binary`] / [`parse::parse_bench`]
//!   read the three interchange formats into one canonical [`Aig`] (an
//!   and-inverter graph with latches),
//! * [`Aig::to_prog`] converts an AIG into a single ℒlr program
//!   ([`lr_ir::Prog`]) whose root concatenates the netlist outputs,
//! * [`cone::partition`] cuts a large AIG into bounded-fanin cones, each a
//!   LUT-sized ℒlr spec the sketch engine can map independently, and
//! * [`cone::stitch`] / [`cone::verify_stitched`] reassemble per-cone mapped
//!   implementations into one design and check it against direct AIG
//!   simulation on random stimulus.
//!
//! ## Literal encoding
//!
//! Variables are numbered densely: variable 0 is the constant *false*, then
//! inputs, then latches, then AND gates. A literal is `2*var + sign`, so the
//! even literal is the variable itself and the odd literal its complement —
//! exactly the AIGER convention, which makes the parsers almost transcription.

pub mod cone;
pub mod gen;
pub mod parse;

use std::fmt;

pub use cone::{partition, stitch, verify_stitched, Cone, ConeOptions, Partition, VerifyReport};
pub use gen::{random_aig, GenConfig};
pub use parse::{parse_aag, parse_aig_binary, parse_bench, parse_netlist, NetlistFormat};

use lr_bv::BitVec;
use lr_ir::{BvOp, NodeId, Prog, ProgBuilder};

/// An AIG literal: a variable index with a complement bit (`2*var + sign`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a variable index and a complement flag.
    pub fn new(var: u32, negated: bool) -> Lit {
        Lit(var << 1 | u32::from(negated))
    }

    /// The variable this literal refers to.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    pub fn negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Whether this literal is one of the two constants.
    pub fn is_const(self) -> bool {
        self.var() == 0
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A latch: a one-bit register with a next-state literal and a reset value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch {
    /// The literal sampled at each clock edge.
    pub next: Lit,
    /// The value held at time 0.
    pub init: bool,
}

/// A two-input AND gate over literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AndGate {
    /// First operand.
    pub rhs0: Lit,
    /// Second operand.
    pub rhs1: Lit,
}

/// A named primary output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Output name (symbol table entry, `.bench` signal, or `o<n>`).
    pub name: String,
    /// The literal the output observes.
    pub lit: Lit,
}

/// An error from parsing or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigError {
    /// Malformed text or header.
    Parse(String),
    /// The byte stream ended inside a structure (e.g. a binary AND delta).
    Truncated(String),
    /// A literal (or `.bench` signal) is used but never defined.
    UndefinedLiteral(String),
    /// A signal or output is defined twice.
    Duplicate(String),
    /// Structurally valid but unsupported (e.g. an `.aig` justice section).
    Unsupported(String),
    /// The combinational part of the graph contains a cycle.
    Cycle(String),
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::Parse(m) => write!(f, "parse error: {m}"),
            AigError::Truncated(m) => write!(f, "truncated input: {m}"),
            AigError::UndefinedLiteral(m) => write!(f, "undefined literal: {m}"),
            AigError::Duplicate(m) => write!(f, "duplicate definition: {m}"),
            AigError::Unsupported(m) => write!(f, "unsupported: {m}"),
            AigError::Cycle(m) => write!(f, "combinational cycle: {m}"),
        }
    }
}

impl std::error::Error for AigError {}

/// An and-inverter graph with latches — the canonical in-memory form every
/// parser targets.
///
/// Variables are dense: `0` is constant false, `1..=num_inputs()` the inputs,
/// then the latches, then the AND gates, in that order.
#[derive(Debug, Clone, PartialEq)]
pub struct Aig {
    name: String,
    input_names: Vec<String>,
    latches: Vec<Latch>,
    ands: Vec<AndGate>,
    outputs: Vec<Output>,
    /// AND variables in dependency order (every gate after its AND operands).
    order: Vec<u32>,
}

impl Aig {
    /// Validates raw parts into an AIG: every referenced variable must exist,
    /// output names must be unique, and the AND gates must be acyclic.
    pub fn new(
        name: impl Into<String>,
        input_names: Vec<String>,
        latches: Vec<Latch>,
        ands: Vec<AndGate>,
        outputs: Vec<Output>,
    ) -> Result<Aig, AigError> {
        let total = 1 + input_names.len() + latches.len() + ands.len();
        let check = |lit: Lit, what: &str| {
            if (lit.var() as usize) < total {
                Ok(())
            } else {
                Err(AigError::UndefinedLiteral(format!(
                    "{what} refers to literal {lit} (variable {}), but only {total} variables exist",
                    lit.var()
                )))
            }
        };
        for (i, latch) in latches.iter().enumerate() {
            check(latch.next, &format!("latch {i}"))?;
        }
        for (i, gate) in ands.iter().enumerate() {
            check(gate.rhs0, &format!("AND gate {i}"))?;
            check(gate.rhs1, &format!("AND gate {i}"))?;
        }
        let mut seen = std::collections::BTreeSet::new();
        for output in &outputs {
            check(output.lit, &format!("output `{}`", output.name))?;
            if !seen.insert(output.name.as_str()) {
                return Err(AigError::Duplicate(format!("output `{}`", output.name)));
            }
        }
        let mut aig =
            Aig { name: name.into(), input_names, latches, ands, outputs, order: Vec::new() };
        aig.order = aig.topo_order()?;
        Ok(aig)
    }

    /// Dependency order over the AND gates; latches and inputs break cycles, so
    /// a cycle that never passes a latch is a validation error.
    fn topo_order(&self) -> Result<Vec<u32>, AigError> {
        let first_and = self.first_and_var();
        let mut state = vec![0u8; self.ands.len()]; // 0 unvisited, 1 open, 2 done
        let mut order = Vec::with_capacity(self.ands.len());
        for start in 0..self.ands.len() {
            if state[start] != 0 {
                continue;
            }
            // Iterative DFS: (gate index, next child to visit).
            let mut stack = vec![(start, 0u8)];
            state[start] = 1;
            while let Some(&mut (gate, ref mut child)) = stack.last_mut() {
                if *child < 2 {
                    let lit = if *child == 0 { self.ands[gate].rhs0 } else { self.ands[gate].rhs1 };
                    *child += 1;
                    if lit.var() >= first_and {
                        let next = (lit.var() - first_and) as usize;
                        match state[next] {
                            0 => {
                                state[next] = 1;
                                stack.push((next, 0));
                            }
                            1 => {
                                return Err(AigError::Cycle(format!(
                                    "AND variable {} participates in a loop with no latch",
                                    lit.var()
                                )));
                            }
                            _ => {}
                        }
                    }
                } else {
                    state[gate] = 2;
                    order.push(first_and + gate as u32);
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// The netlist's name (file stem or module name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.ands.len()
    }

    /// Total variable count, constant included.
    pub fn num_vars(&self) -> usize {
        1 + self.num_inputs() + self.num_latches() + self.num_ands()
    }

    /// Primary input names, in declaration order (variable `1 + i`).
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// The latches (variable `1 + num_inputs() + j` for latch `j`).
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// The AND gates (variable `first_and_var() + k` for gate `k`).
    pub fn ands(&self) -> &[AndGate] {
        &self.ands
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// The first AND-gate variable index.
    pub fn first_and_var(&self) -> u32 {
        1 + (self.num_inputs() + self.num_latches()) as u32
    }

    /// Whether a variable is a primary input.
    pub fn is_input_var(&self, var: u32) -> bool {
        var >= 1 && (var as usize) <= self.num_inputs()
    }

    /// Whether a variable is a latch.
    pub fn is_latch_var(&self, var: u32) -> bool {
        (var as usize) > self.num_inputs() && var < self.first_and_var()
    }

    /// The AND gate defining `var`, if `var` is an AND variable.
    pub fn and_of(&self, var: u32) -> Option<&AndGate> {
        var.checked_sub(self.first_and_var()).and_then(|k| self.ands.get(k as usize))
    }

    /// Renames the AIG.
    pub fn with_name(mut self, name: impl Into<String>) -> Aig {
        self.name = name.into();
        self
    }

    /// The latch reset vector — the simulation state at time 0.
    pub fn initial_state(&self) -> Vec<bool> {
        self.latches.iter().map(|l| l.init).collect()
    }

    /// Evaluates every variable combinationally from the given input and latch
    /// values. Index the result by variable number.
    pub fn eval_vars(&self, inputs: &[bool], latch_state: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs(), "one value per primary input");
        assert_eq!(latch_state.len(), self.num_latches(), "one value per latch");
        let mut values = vec![false; self.num_vars()];
        values[1..=inputs.len()].copy_from_slice(inputs);
        let base = 1 + inputs.len();
        values[base..base + latch_state.len()].copy_from_slice(latch_state);
        let first_and = self.first_and_var();
        let lit = |values: &[bool], l: Lit| values[l.var() as usize] ^ l.negated();
        for &var in &self.order {
            let gate = self.ands[(var - first_and) as usize];
            values[var as usize] = lit(&values, gate.rhs0) && lit(&values, gate.rhs1);
        }
        values
    }

    /// One simulation step: computes this cycle's outputs from `inputs` and the
    /// current latch `state`, then advances the state through every latch.
    pub fn step(&self, state: &mut Vec<bool>, inputs: &[bool]) -> Vec<bool> {
        let values = self.eval_vars(inputs, state);
        let lit = |l: Lit| values[l.var() as usize] ^ l.negated();
        let outputs = self.outputs.iter().map(|o| lit(o.lit)).collect();
        *state = self.latches.iter().map(|l| lit(l.next)).collect();
        outputs
    }

    /// Simulates from the reset state: `stimulus[t]` holds the input values of
    /// cycle `t`; the result holds the output values of each cycle.
    pub fn simulate(&self, stimulus: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let mut state = self.initial_state();
        stimulus.iter().map(|inputs| self.step(&mut state, inputs)).collect()
    }

    /// Converts the whole AIG into one ℒlr program: one-bit inputs named after
    /// the primary inputs, latches as registers, and a root that concatenates
    /// the outputs (output `i` is bit `i` of the root).
    ///
    /// # Panics
    /// Panics if the AIG has no outputs (an ℒlr program needs a root).
    pub fn to_prog(&self) -> Prog {
        assert!(!self.outputs.is_empty(), "cannot convert an AIG without outputs");
        let mut b = ProgBuilder::new(&self.name);
        let mut var_nodes = vec![None::<NodeId>; self.num_vars()];
        for (i, name) in self.input_names.iter().enumerate() {
            var_nodes[1 + i] = Some(b.input(name, 1));
        }
        let first_latch = 1 + self.num_inputs();
        for (j, latch) in self.latches.iter().enumerate() {
            let init = BitVec::from_u64(u64::from(latch.init), 1);
            var_nodes[first_latch + j] = Some(b.reg_placeholder_init(init));
        }
        let first_and = self.first_and_var();
        for &var in &self.order {
            let gate = self.ands[(var - first_and) as usize];
            let a = lit_node(&mut b, &mut var_nodes, gate.rhs0);
            let x = lit_node(&mut b, &mut var_nodes, gate.rhs1);
            var_nodes[var as usize] = Some(b.op2(BvOp::And, a, x));
        }
        for (j, latch) in self.latches.iter().enumerate().rev() {
            let data = lit_node(&mut b, &mut var_nodes, latch.next);
            b.set_reg_data(var_nodes[first_latch + j].expect("latch node exists"), data);
        }
        let mut root = lit_node(&mut b, &mut var_nodes, self.outputs[0].lit);
        for output in &self.outputs[1..] {
            let bit = lit_node(&mut b, &mut var_nodes, output.lit);
            // `Concat`'s first operand lands in the high bits, so later outputs
            // stack on top: output i stays at bit i.
            root = b.op2(BvOp::Concat, bit, root);
        }
        b.finish(root)
    }
}

/// The node computing a literal's value, materializing the variable's node (a
/// constant for variable 0) plus an inverter when complemented.
pub(crate) fn lit_node(b: &mut ProgBuilder, var_nodes: &mut [Option<NodeId>], lit: Lit) -> NodeId {
    let node = match var_nodes[lit.var() as usize] {
        Some(node) => node,
        None => {
            debug_assert_eq!(lit.var(), 0, "only the constant is materialized on demand");
            let node = b.constant_u64(0, 1);
            var_nodes[lit.var() as usize] = Some(node);
            node
        }
    };
    if lit.negated() {
        b.op1(BvOp::Not, node)
    } else {
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::StreamInputs;

    /// in0 AND NOT in1, plus a toggle latch observing it.
    fn tiny() -> Aig {
        let g = Lit::new(4, false);
        Aig::new(
            "tiny",
            vec!["in0".into(), "in1".into()],
            vec![Latch { next: g, init: false }],
            vec![AndGate { rhs0: Lit::new(1, false), rhs1: Lit::new(2, true) }],
            vec![
                Output { name: "comb".into(), lit: g },
                Output { name: "held".into(), lit: Lit::new(3, false) },
            ],
        )
        .unwrap()
    }

    #[test]
    fn literal_encoding_round_trips() {
        let l = Lit::new(7, true);
        assert_eq!(l.0, 15);
        assert_eq!(l.var(), 7);
        assert!(l.negated());
        assert_eq!(l.negate(), Lit::new(7, false));
        assert!(Lit::TRUE.is_const() && Lit::FALSE.is_const());
    }

    #[test]
    fn simulation_tracks_latch_state() {
        let aig = tiny();
        let outs = aig.simulate(&[vec![true, false], vec![false, false], vec![true, true]]);
        // comb = in0 & !in1 each cycle; held = previous comb (init 0).
        assert_eq!(outs[0], vec![true, false]);
        assert_eq!(outs[1], vec![false, true]);
        assert_eq!(outs[2], vec![false, false]);
    }

    #[test]
    fn to_prog_matches_simulation() {
        let aig = tiny();
        let prog = aig.to_prog();
        assert!(prog.well_formed().is_ok());
        let stimulus = [vec![true, false], vec![false, false], vec![true, true]];
        let mut env = StreamInputs::new();
        for (i, name) in aig.input_names().iter().enumerate() {
            let trace = stimulus.iter().map(|s| BitVec::from_u64(u64::from(s[i]), 1)).collect();
            env.set_trace(name.clone(), trace);
        }
        let sim = aig.simulate(&stimulus);
        for (t, expected) in sim.iter().enumerate() {
            let got = prog.interp(&env, t as u32).unwrap();
            for (bit, &want) in expected.iter().enumerate() {
                assert_eq!(got.bit(bit as u32), want, "cycle {t} output {bit}");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_structure() {
        // Undefined literal.
        let err = Aig::new(
            "u",
            vec!["a".into()],
            vec![],
            vec![],
            vec![Output { name: "o".into(), lit: Lit::new(9, false) }],
        )
        .unwrap_err();
        assert!(matches!(err, AigError::UndefinedLiteral(_)), "{err}");

        // Duplicate output name.
        let err = Aig::new(
            "d",
            vec!["a".into()],
            vec![],
            vec![],
            vec![
                Output { name: "o".into(), lit: Lit::new(1, false) },
                Output { name: "o".into(), lit: Lit::new(1, true) },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, AigError::Duplicate(_)), "{err}");

        // Combinational cycle: two ANDs feeding each other.
        let err = Aig::new(
            "c",
            vec!["a".into()],
            vec![],
            vec![
                AndGate { rhs0: Lit::new(3, false), rhs1: Lit::new(1, false) },
                AndGate { rhs0: Lit::new(2, false), rhs1: Lit::new(1, false) },
            ],
            vec![Output { name: "o".into(), lit: Lit::new(2, false) }],
        )
        .unwrap_err();
        assert!(matches!(err, AigError::Cycle(_)), "{err}");
    }
}
