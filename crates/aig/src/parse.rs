//! Parsers and writers for the three structural interchange formats.
//!
//! * **ASCII AIGER** (`.aag`): `aag M I L O A` header, then input literals,
//!   latch lines (`lhs next [init]`), output literals, AND lines
//!   (`lhs rhs0 rhs1`), then an optional symbol table and comment section.
//!   Literals need not be dense — the parser remaps them onto the canonical
//!   numbering of [`Aig`].
//! * **Binary AIGER** (`.aig`): same header with `aig`; inputs are implicit,
//!   latch/output lines carry only the referenced literals, and the AND gates
//!   are delta-compressed (each gate is two 7-bit-group varints
//!   `lhs - rhs0` and `rhs0 - rhs1`, with `lhs > rhs0 >= rhs1`).
//! * **ISCAS-style `.bench`**: `INPUT(x)` / `OUTPUT(x)` declarations plus
//!   `x = GATE(a, b, …)` lines. Gates (`AND`, `NAND`, `OR`, `NOR`, `XOR`,
//!   `XNOR`, `NOT`, `BUFF`, `DFF`) are decomposed into AND/inverter structure;
//!   `DFF` becomes a latch with reset value 0.
//!
//! [`parse_netlist`] dispatches on a path hint (extension) or, failing that,
//! sniffs the header bytes.

use std::collections::BTreeMap;

use crate::{Aig, AigError, AndGate, Latch, Lit, Output};

/// The on-disk formats the frontend understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetlistFormat {
    /// ASCII AIGER (`.aag`).
    AigerAscii,
    /// Binary AIGER (`.aig`).
    AigerBinary,
    /// ISCAS-style gate list (`.bench`).
    Bench,
}

/// Whether a path names a structural netlist this crate parses (by extension).
pub fn is_netlist_path(path: &str) -> bool {
    format_from_path(path).is_some()
}

fn format_from_path(path: &str) -> Option<NetlistFormat> {
    let ext = path.rsplit('.').next()?;
    match ext.to_ascii_lowercase().as_str() {
        "aag" => Some(NetlistFormat::AigerAscii),
        "aig" => Some(NetlistFormat::AigerBinary),
        "bench" => Some(NetlistFormat::Bench),
        _ => None,
    }
}

fn sniff_header(bytes: &[u8]) -> Option<NetlistFormat> {
    if bytes.starts_with(b"aag ") {
        return Some(NetlistFormat::AigerAscii);
    }
    if bytes.starts_with(b"aig ") {
        return Some(NetlistFormat::AigerBinary);
    }
    let text = std::str::from_utf8(bytes).ok()?;
    let looks_bench = text.lines().map(str::trim).filter(|l| !l.is_empty()).all(|l| {
        l.starts_with('#') || l.starts_with("INPUT(") || l.starts_with("OUTPUT(") || l.contains('=')
    });
    (looks_bench && !text.trim().is_empty()).then_some(NetlistFormat::Bench)
}

/// Parses a netlist in any supported format. `path_hint`, when given, picks the
/// format by extension; otherwise the header bytes decide.
pub fn parse_netlist(bytes: &[u8], path_hint: Option<&str>) -> Result<Aig, AigError> {
    let format =
        path_hint.and_then(format_from_path).or_else(|| sniff_header(bytes)).ok_or_else(|| {
            AigError::Parse(
                "unrecognized netlist format (expected AIGER `aag`/`aig` or a `.bench` gate list)"
                    .to_string(),
            )
        })?;
    match format {
        NetlistFormat::AigerBinary => parse_aig_binary(bytes),
        NetlistFormat::AigerAscii => {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| AigError::Parse("ASCII AIGER must be UTF-8".to_string()))?;
            parse_aag(text)
        }
        NetlistFormat::Bench => {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| AigError::Parse("`.bench` must be UTF-8".to_string()))?;
            parse_bench(text)
        }
    }
}

/// Makes a symbol usable as an ℒlr input name (and, downstream, a Verilog
/// identifier): non-alphanumerics become `_`, and a leading digit is prefixed.
fn sanitize(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

struct Header {
    m: u64,
    i: u64,
    l: u64,
    o: u64,
    a: u64,
}

fn parse_header(line: &str, magic: &str) -> Result<Header, AigError> {
    let mut fields = line.split_whitespace();
    if fields.next() != Some(magic) {
        return Err(AigError::Parse(format!("expected `{magic} M I L O A` header, got `{line}`")));
    }
    let mut next = |what: &str| {
        fields.next().and_then(|f| f.parse::<u64>().ok()).ok_or_else(|| {
            AigError::Parse(format!("header field {what} is not a number: `{line}`"))
        })
    };
    let header =
        Header { m: next("M")?, i: next("I")?, l: next("L")?, o: next("O")?, a: next("A")? };
    if header.i + header.l + header.a > header.m {
        return Err(AigError::Parse(format!(
            "header claims {} variables but declares {} inputs + {} latches + {} ANDs",
            header.m, header.i, header.l, header.a
        )));
    }
    if header.m > 10_000_000 {
        return Err(AigError::Unsupported(format!("{} variables is beyond this parser", header.m)));
    }
    Ok(header)
}

/// Applies an AIGER symbol table / comment line. Returns false once the comment
/// section starts.
fn apply_symbol(
    line: &str,
    input_names: &mut [String],
    outputs: &mut [Output],
) -> Result<bool, AigError> {
    if line == "c" || line.starts_with("c ") {
        return Ok(false);
    }
    let err = || AigError::Parse(format!("malformed symbol table entry `{line}`"));
    let (pos, name) = line[1..].split_once(char::is_whitespace).ok_or_else(err)?;
    let pos: usize = pos.parse().map_err(|_| err())?;
    let name = sanitize(name.trim());
    match line.as_bytes()[0] {
        b'i' => {
            *input_names.get_mut(pos).ok_or_else(err)? = name;
        }
        b'o' => {
            outputs.get_mut(pos).ok_or_else(err)?.name = name;
        }
        b'l' => {} // Latch names carry no semantics here.
        _ => return Err(err()),
    }
    Ok(true)
}

/// Parses ASCII AIGER. Literals are remapped onto the dense canonical
/// numbering, so files with gaps or out-of-order definitions are accepted as
/// long as every referenced literal is defined.
pub fn parse_aag(text: &str) -> Result<Aig, AigError> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) =
        lines.next().ok_or_else(|| AigError::Truncated("empty file".to_string()))?;
    let header = parse_header(header_line, "aag")?;

    let mut next_line = |what: &str| {
        lines
            .next()
            .ok_or_else(|| AigError::Truncated(format!("file ends before the {what} section")))
    };
    // old variable -> canonical variable.
    let mut var_map: BTreeMap<u32, u32> = BTreeMap::new();
    var_map.insert(0, 0);
    let define = |lit: u64, what: &str, lineno: usize, var_map: &mut BTreeMap<u32, u32>| {
        if lit % 2 == 1 || lit == 0 || lit / 2 > header.m {
            return Err(AigError::Parse(format!(
                "line {}: {what} must be defined by a fresh even literal, got {lit}",
                lineno + 1
            )));
        }
        let canonical = var_map.len() as u32;
        if var_map.insert((lit / 2) as u32, canonical).is_some() {
            return Err(AigError::Duplicate(format!(
                "line {}: literal {lit} is defined twice",
                lineno + 1
            )));
        }
        Ok(())
    };

    let parse_lit = |field: &str, lineno: usize| {
        field.parse::<u64>().map_err(|_| {
            AigError::Parse(format!("line {}: `{field}` is not a literal", lineno + 1))
        })
    };

    let mut input_lits = Vec::new();
    for k in 0..header.i {
        let (lineno, line) = next_line("input")?;
        let lit = parse_lit(line.trim(), lineno)?;
        define(lit, &format!("input {k}"), lineno, &mut var_map)?;
        input_lits.push(lit);
    }
    let mut latch_lines = Vec::new();
    for k in 0..header.l {
        let (lineno, line) = next_line("latch")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 2 || fields.len() > 3 {
            return Err(AigError::Parse(format!(
                "line {}: latch lines are `lhs next [init]`",
                lineno + 1
            )));
        }
        let lhs = parse_lit(fields[0], lineno)?;
        let next = parse_lit(fields[1], lineno)?;
        let init = match fields.get(2) {
            None => false,
            Some(&"0") => false,
            Some(&"1") => true,
            // An init equal to the latch's own literal means "uninitialized";
            // model it as 0 like most tools do.
            Some(f) if parse_lit(f, lineno)? == lhs => false,
            Some(f) => {
                return Err(AigError::Parse(format!(
                    "line {}: latch init must be 0, 1, or the latch literal, got `{f}`",
                    lineno + 1
                )))
            }
        };
        define(lhs, &format!("latch {k}"), lineno, &mut var_map)?;
        latch_lines.push((next, init));
    }
    let mut output_lits = Vec::new();
    for _ in 0..header.o {
        let (lineno, line) = next_line("output")?;
        output_lits.push(parse_lit(line.trim(), lineno)?);
    }
    let mut and_lines = Vec::new();
    for k in 0..header.a {
        let (lineno, line) = next_line("AND")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(AigError::Parse(format!(
                "line {}: AND lines are `lhs rhs0 rhs1`",
                lineno + 1
            )));
        }
        let lhs = parse_lit(fields[0], lineno)?;
        let rhs0 = parse_lit(fields[1], lineno)?;
        let rhs1 = parse_lit(fields[2], lineno)?;
        define(lhs, &format!("AND gate {k}"), lineno, &mut var_map)?;
        and_lines.push((rhs0, rhs1));
    }

    let resolve = |lit: u64| -> Result<Lit, AigError> {
        let var = *var_map
            .get(&((lit / 2) as u32))
            .ok_or_else(|| AigError::UndefinedLiteral(format!("literal {lit} is never defined")))?;
        Ok(Lit::new(var, lit % 2 == 1))
    };

    let input_names = (0..header.i).map(|k| format!("i{k}")).collect::<Vec<_>>();
    let latches = latch_lines
        .into_iter()
        .map(|(next, init)| Ok(Latch { next: resolve(next)?, init }))
        .collect::<Result<Vec<_>, AigError>>()?;
    let ands = and_lines
        .into_iter()
        .map(|(rhs0, rhs1)| Ok(AndGate { rhs0: resolve(rhs0)?, rhs1: resolve(rhs1)? }))
        .collect::<Result<Vec<_>, AigError>>()?;
    let mut outputs = output_lits
        .into_iter()
        .enumerate()
        .map(|(k, lit)| Ok(Output { name: format!("o{k}"), lit: resolve(lit)? }))
        .collect::<Result<Vec<_>, AigError>>()?;

    let mut input_names = input_names;
    for (_, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        match apply_symbol(line, &mut input_names, &mut outputs) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(e),
        }
    }
    Aig::new("netlist", input_names, latches, ands, outputs)
}

/// Parses binary AIGER. The variable numbering of a binary file is already the
/// canonical one, so no remapping happens; truncated delta streams and
/// non-monotone gates are rejected.
pub fn parse_aig_binary(bytes: &[u8]) -> Result<Aig, AigError> {
    let mut pos = 0usize;
    let mut read_line = |what: &str| -> Result<String, AigError> {
        let start = pos;
        while pos < bytes.len() && bytes[pos] != b'\n' {
            pos += 1;
        }
        if pos >= bytes.len() {
            return Err(AigError::Truncated(format!("file ends inside the {what} line")));
        }
        let line = std::str::from_utf8(&bytes[start..pos])
            .map_err(|_| AigError::Parse(format!("{what} line is not UTF-8")))?;
        pos += 1; // Consume the newline.
        Ok(line.to_string())
    };

    let header = parse_header(&read_line("header")?, "aig")?;
    if header.i + header.l + header.a != header.m {
        return Err(AigError::Parse(format!(
            "binary AIGER requires M = I + L + A, got M={} I={} L={} A={}",
            header.m, header.i, header.l, header.a
        )));
    }
    let max_lit = 2 * header.m + 1;
    let parse_lit = |field: &str, what: &str| -> Result<Lit, AigError> {
        let lit = field
            .parse::<u64>()
            .map_err(|_| AigError::Parse(format!("{what}: `{field}` is not a literal")))?;
        if lit > max_lit {
            return Err(AigError::UndefinedLiteral(format!(
                "{what}: literal {lit} exceeds the declared maximum {max_lit}"
            )));
        }
        Ok(Lit(lit as u32))
    };

    let mut latches = Vec::new();
    for k in 0..header.l {
        let line = read_line("latch")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        let what = format!("latch {k}");
        let next = parse_lit(
            fields.first().ok_or_else(|| AigError::Parse(format!("{what}: empty line")))?,
            &what,
        )?;
        let own_lit = 2 * (header.i + k + 1);
        let init = match fields.get(1) {
            None | Some(&"0") => false,
            Some(&"1") => true,
            Some(f) if f.parse::<u64>() == Ok(own_lit) => false, // "uninitialized"
            Some(f) => {
                return Err(AigError::Parse(format!(
                    "{what}: init must be 0, 1, or the latch literal, got `{f}`"
                )))
            }
        };
        if fields.len() > 2 {
            return Err(AigError::Parse(format!("{what}: too many fields")));
        }
        latches.push(Latch { next, init });
    }
    let mut outputs = Vec::new();
    for k in 0..header.o {
        let line = read_line("output")?;
        let lit = parse_lit(line.trim(), &format!("output {k}"))?;
        outputs.push(Output { name: format!("o{k}"), lit });
    }

    // The delta-compressed AND section: 7-bit groups, high bit = continuation.
    let mut read_delta = |gate: u64| -> Result<u64, AigError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *bytes.get(pos).ok_or_else(|| {
                AigError::Truncated(format!("delta stream ends inside AND gate {gate}"))
            })?;
            pos += 1;
            if shift >= 63 {
                return Err(AigError::Parse(format!("AND gate {gate}: delta overflows")));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    };
    let mut ands = Vec::new();
    for k in 0..header.a {
        let lhs = 2 * (header.i + header.l + k + 1);
        let delta0 = read_delta(k)?;
        let delta1 = read_delta(k)?;
        let rhs0 = lhs.checked_sub(delta0).filter(|_| delta0 >= 1).ok_or_else(|| {
            AigError::Parse(format!("AND gate {k}: operand delta {delta0} exceeds lhs {lhs}"))
        })?;
        let rhs1 = rhs0.checked_sub(delta1).ok_or_else(|| {
            AigError::Parse(format!("AND gate {k}: second delta {delta1} exceeds rhs0 {rhs0}"))
        })?;
        ands.push(AndGate { rhs0: Lit(rhs0 as u32), rhs1: Lit(rhs1 as u32) });
    }

    let mut input_names = (0..header.i).map(|k| format!("i{k}")).collect::<Vec<_>>();
    if pos < bytes.len() {
        let tail = std::str::from_utf8(&bytes[pos..])
            .map_err(|_| AigError::Parse("symbol table is not UTF-8".to_string()))?;
        for raw in tail.lines() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if !apply_symbol(line, &mut input_names, &mut outputs)? {
                break;
            }
        }
    }
    Aig::new("netlist", input_names, latches, ands, outputs)
}

/// Parses an ISCAS-style `.bench` gate list, decomposing the gate vocabulary
/// into AND/inverter structure and `DFF`s into latches.
pub fn parse_bench(text: &str) -> Result<Aig, AigError> {
    enum Def {
        Gate { op: String, args: Vec<String>, lineno: usize },
        Dff,
    }
    let mut inputs: Vec<String> = Vec::new();
    let mut output_decls: Vec<(String, usize)> = Vec::new();
    let mut defs: BTreeMap<String, Def> = BTreeMap::new();
    let mut dffs: Vec<(String, String, usize)> = Vec::new(); // (signal, arg, line)

    let inner = |line: &str, head: &str| -> Option<String> {
        let rest = line.strip_prefix(head)?.trim();
        let rest = rest.strip_prefix('(')?.strip_suffix(')')?;
        Some(rest.trim().to_string())
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| AigError::Parse(format!("line {}: {msg}", lineno + 1));
        if let Some(name) = inner(line, "INPUT") {
            if name.is_empty() {
                return Err(at("INPUT needs a signal name".to_string()));
            }
            if defs.contains_key(&name) || inputs.contains(&name) {
                return Err(AigError::Duplicate(format!(
                    "line {}: signal `{name}` is defined twice",
                    lineno + 1
                )));
            }
            inputs.push(name);
        } else if let Some(name) = inner(line, "OUTPUT") {
            if name.is_empty() {
                return Err(at("OUTPUT needs a signal name".to_string()));
            }
            output_decls.push((name, lineno));
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let lhs = lhs.trim().to_string();
            let rhs = rhs.trim();
            let open =
                rhs.find('(').ok_or_else(|| at(format!("expected `GATE(args)`: `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(at(format!("unbalanced parentheses: `{rhs}`")));
            }
            let op = rhs[..open].trim().to_ascii_uppercase();
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if args.is_empty() {
                return Err(at(format!("gate `{op}` has no operands")));
            }
            if inputs.contains(&lhs) {
                return Err(AigError::Duplicate(format!(
                    "line {}: signal `{lhs}` is defined twice",
                    lineno + 1
                )));
            }
            let def = if op == "DFF" {
                if args.len() != 1 {
                    return Err(at("DFF takes exactly one operand".to_string()));
                }
                dffs.push((lhs.clone(), args[0].clone(), lineno));
                Def::Dff
            } else {
                Def::Gate { op, args, lineno }
            };
            if defs.insert(lhs.clone(), def).is_some() {
                return Err(AigError::Duplicate(format!(
                    "line {}: signal `{lhs}` is defined twice",
                    lineno + 1
                )));
            }
        } else {
            return Err(at(format!("unrecognized line `{line}`")));
        }
    }

    // Canonical numbering: inputs, then DFFs (latches), then decomposed ANDs.
    let mut env: BTreeMap<&str, Lit> = BTreeMap::new();
    for (i, name) in inputs.iter().enumerate() {
        env.insert(name, Lit::new(1 + i as u32, false));
    }
    let first_latch = 1 + inputs.len() as u32;
    for (j, (signal, ..)) in dffs.iter().enumerate() {
        env.insert(signal, Lit::new(first_latch + j as u32, false));
    }
    let first_and = first_latch + dffs.len() as u32;
    let mut ands: Vec<AndGate> = Vec::new();
    let mut and2 = |ands: &mut Vec<AndGate>, a: Lit, b: Lit| -> Lit {
        ands.push(AndGate { rhs0: a, rhs1: b });
        Lit::new(first_and + (ands.len() - 1) as u32, false)
    };

    // Resolve signals iteratively (netlists can be thousands of gates deep).
    // `on_path` marks gates on the current DFS path; reaching one again before
    // it resolves is a combinational cycle. Diamond reconvergence is fine: the
    // reconverging signal is already in `env` by the time its duplicate stack
    // entry surfaces.
    let mut on_path: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut resolve = |start: &str| -> Result<Lit, AigError> {
        if let Some(&lit) = env.get(start) {
            return Ok(lit);
        }
        let start_key = defs
            .get_key_value(start)
            .ok_or_else(|| {
                AigError::UndefinedLiteral(format!("signal `{start}` is never defined"))
            })?
            .0
            .as_str();
        let mut stack: Vec<(&str, bool)> = vec![(start_key, false)];
        while let Some(&mut (signal, ref mut expanded)) = stack.last_mut() {
            if env.contains_key(signal) {
                stack.pop();
                continue;
            }
            let Some(Def::Gate { op, args, lineno }) = defs.get(signal) else {
                unreachable!("DFFs and inputs are pre-seeded into env");
            };
            let at = |msg: String| AigError::Parse(format!("line {}: {msg}", lineno + 1));
            if !*expanded {
                if !on_path.insert(signal) {
                    return Err(AigError::Cycle(format!(
                        "signal `{signal}` depends on itself without a DFF"
                    )));
                }
                *expanded = true;
                for arg in args {
                    if env.contains_key(arg.as_str()) {
                        continue;
                    }
                    let key = defs
                        .get_key_value(arg.as_str())
                        .ok_or_else(|| {
                            AigError::UndefinedLiteral(format!("signal `{arg}` is never defined"))
                        })?
                        .0
                        .as_str();
                    stack.push((key, false));
                }
                continue;
            }
            let operands: Vec<Lit> = args.iter().map(|a| env[a.as_str()]).collect();
            let fold =
                |ands: &mut Vec<AndGate>, f: &mut dyn FnMut(&mut Vec<AndGate>, Lit, Lit) -> Lit| {
                    let mut acc = operands[0];
                    for &next in &operands[1..] {
                        acc = f(ands, acc, next);
                    }
                    acc
                };
            let mut or2 = |ands: &mut Vec<AndGate>, a: Lit, b: Lit| {
                and2(ands, a.negate(), b.negate()).negate()
            };
            let mut xor2 = |ands: &mut Vec<AndGate>, a: Lit, b: Lit| {
                let t0 = and2(ands, a, b.negate());
                let t1 = and2(ands, a.negate(), b);
                and2(ands, t0.negate(), t1.negate()).negate()
            };
            let one = |operands: &[Lit]| -> Result<Lit, AigError> {
                if operands.len() == 1 {
                    Ok(operands[0])
                } else {
                    Err(at(format!("`{op}` takes exactly one operand")))
                }
            };
            let lit = match op.as_str() {
                "BUFF" | "BUF" => one(&operands)?,
                "NOT" => one(&operands)?.negate(),
                "AND" => fold(&mut ands, &mut and2),
                "NAND" => fold(&mut ands, &mut and2).negate(),
                "OR" => fold(&mut ands, &mut or2),
                "NOR" => fold(&mut ands, &mut or2).negate(),
                "XOR" => fold(&mut ands, &mut xor2),
                "XNOR" => fold(&mut ands, &mut xor2).negate(),
                other => return Err(at(format!("unknown gate `{other}`"))),
            };
            env.insert(signal, lit);
            on_path.remove(signal);
            stack.pop();
        }
        Ok(env[start])
    };

    let mut outputs = Vec::new();
    for (name, _lineno) in &output_decls {
        let lit = resolve(name)?;
        outputs.push(Output { name: sanitize(name), lit });
    }
    let mut latches = Vec::new();
    for (_, arg, _) in &dffs {
        let next = resolve(arg)?;
        latches.push(Latch { next, init: false });
    }
    let input_names = inputs.iter().map(|n| sanitize(n)).collect();
    Aig::new("netlist", input_names, latches, ands, outputs)
}

impl Aig {
    /// Writes the AIG as ASCII AIGER (canonical numbering, symbol table for
    /// inputs and outputs).
    pub fn to_aag(&self) -> String {
        let i = self.num_inputs();
        let l = self.num_latches();
        let a = self.num_ands();
        let mut out = format!("aag {} {i} {l} {} {a}\n", i + l + a, self.outputs().len());
        for k in 0..i {
            out.push_str(&format!("{}\n", 2 * (k + 1)));
        }
        for (j, latch) in self.latches().iter().enumerate() {
            let lhs = 2 * (1 + i + j);
            if latch.init {
                out.push_str(&format!("{lhs} {} 1\n", latch.next));
            } else {
                out.push_str(&format!("{lhs} {}\n", latch.next));
            }
        }
        for output in self.outputs() {
            out.push_str(&format!("{}\n", output.lit));
        }
        let first_and = self.first_and_var();
        for (k, gate) in self.ands().iter().enumerate() {
            out.push_str(&format!("{} {} {}\n", 2 * (first_and + k as u32), gate.rhs0, gate.rhs1));
        }
        for (k, name) in self.input_names().iter().enumerate() {
            out.push_str(&format!("i{k} {name}\n"));
        }
        for (k, output) in self.outputs().iter().enumerate() {
            out.push_str(&format!("o{k} {}\n", output.name));
        }
        out
    }

    /// Writes the AIG as binary AIGER. Gates are renumbered into dependency
    /// order first, since the format requires `lhs > rhs0 >= rhs1`.
    pub fn to_aig_binary(&self) -> Vec<u8> {
        let i = self.num_inputs() as u32;
        let l = self.num_latches() as u32;
        let a = self.num_ands() as u32;
        let first_and = self.first_and_var();
        // order[k] = old AND var of the gate emitted k-th; renumber maps old -> new.
        let mut renumber: Vec<u32> = vec![0; self.num_vars()];
        for var in 0..first_and {
            renumber[var as usize] = var;
        }
        for (k, &old) in self.order.iter().enumerate() {
            renumber[old as usize] = first_and + k as u32;
        }
        let remap = |lit: Lit| Lit::new(renumber[lit.var() as usize], lit.negated());

        let mut out =
            format!("aig {} {i} {l} {} {a}\n", i + l + a, self.outputs().len()).into_bytes();
        for latch in self.latches() {
            let next = remap(latch.next);
            if latch.init {
                out.extend_from_slice(format!("{next} 1\n").as_bytes());
            } else {
                out.extend_from_slice(format!("{next}\n").as_bytes());
            }
        }
        for output in self.outputs() {
            out.extend_from_slice(format!("{}\n", remap(output.lit)).as_bytes());
        }
        let push_delta = |out: &mut Vec<u8>, mut delta: u32| loop {
            let byte = (delta & 0x7F) as u8;
            delta >>= 7;
            if delta == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        };
        for (k, &old) in self.order.iter().enumerate() {
            let gate = &self.ands()[(old - first_and) as usize];
            let lhs = 2 * (first_and + k as u32);
            let (mut rhs0, mut rhs1) = (remap(gate.rhs0).0, remap(gate.rhs1).0);
            if rhs0 < rhs1 {
                std::mem::swap(&mut rhs0, &mut rhs1);
            }
            debug_assert!(lhs > rhs0, "dependency order guarantees monotone gates");
            push_delta(&mut out, lhs - rhs0);
            push_delta(&mut out, rhs0 - rhs1);
        }
        for (k, name) in self.input_names().iter().enumerate() {
            out.extend_from_slice(format!("i{k} {name}\n").as_bytes());
        }
        for (k, output) in self.outputs().iter().enumerate() {
            out.extend_from_slice(format!("o{k} {}\n", output.name).as_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HALF_ADDER_AAG: &str = "\
aag 7 2 0 2 3
2
4
6
12
6 13 15
12 2 4
14 3 5
i0 x
i1 y
o0 sum
o1 carry
";

    #[test]
    fn ascii_aiger_parses_the_spec_example() {
        // The half adder from the AIGER report: sum = x ^ y, carry = x & y.
        let aig = parse_aag(HALF_ADDER_AAG).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_ands(), 3);
        assert_eq!(aig.input_names(), ["x", "y"]);
        assert_eq!(aig.outputs()[0].name, "sum");
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let outs = aig.simulate(&[vec![x, y]]);
            assert_eq!(outs[0][0], x ^ y, "sum({x},{y})");
            assert_eq!(outs[0][1], x && y, "carry({x},{y})");
        }
    }

    #[test]
    fn ascii_writer_round_trips() {
        let aig = parse_aag(HALF_ADDER_AAG).unwrap();
        let again = parse_aag(&aig.to_aag()).unwrap();
        assert_eq!(aig, again);
    }

    #[test]
    fn binary_writer_round_trips_through_the_binary_parser() {
        let aig = parse_aag(HALF_ADDER_AAG).unwrap();
        let bytes = aig.to_aig_binary();
        let again = parse_aig_binary(&bytes).unwrap();
        assert_eq!(again.num_ands(), 3);
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(aig.simulate(&[vec![x, y]]), again.simulate(&[vec![x, y]]));
        }
    }

    #[test]
    fn bench_gates_decompose_correctly() {
        let text = "\
# tiny mixed netlist
INPUT(a)
INPUT(b)
OUTPUT(f)
OUTPUT(g)
n1 = XOR(a, b)
f = NAND(n1, a)
q = DFF(f)
g = OR(q, b)
";
        let aig = parse_bench(text).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_latches(), 1);
        let mut state = aig.initial_state();
        for (a, b) in [(true, false), (true, true), (false, true), (false, false)] {
            let f = !((a ^ b) && a);
            let outs = aig.step(&mut state, &[a, b]);
            assert_eq!(outs[0], f, "f({a},{b})");
            // g = previous f OR b (DFF init 0).
            assert_eq!(state, vec![f]);
        }
    }

    #[test]
    fn truncated_inputs_are_rejected() {
        // ASCII: file ends before the AND section.
        let err = parse_aag("aag 3 1 0 1 2\n2\n4\n").unwrap_err();
        assert!(matches!(err, AigError::Truncated(_)), "{err}");

        // Binary: delta stream ends inside a gate.
        let aig = parse_aag(HALF_ADDER_AAG).unwrap();
        let bytes = aig.to_aig_binary();
        // Find the end of the output section and cut one delta byte off.
        let err = parse_aig_binary(&bytes[..bytes.len().saturating_sub(40)]).unwrap_err();
        assert!(
            matches!(err, AigError::Truncated(_) | AigError::Parse(_)),
            "truncated binary must not parse: {err}"
        );
    }

    #[test]
    fn undefined_and_duplicate_definitions_are_rejected() {
        // Output literal 8 names a variable that is never defined.
        let err = parse_aag("aag 3 1 0 1 1\n2\n8\n4 2 3\n").unwrap_err();
        assert!(matches!(err, AigError::UndefinedLiteral(_)), "{err}");

        // The same literal defined as both input and AND.
        let err = parse_aag("aag 2 1 0 1 1\n2\n2\n2 2 2\n").unwrap_err();
        assert!(matches!(err, AigError::Duplicate(_)), "{err}");

        // .bench: gate over an undefined signal.
        let err = parse_bench("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n").unwrap_err();
        assert!(matches!(err, AigError::UndefinedLiteral(_)), "{err}");

        // .bench: duplicate OUTPUT.
        let err = parse_bench("INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n").unwrap_err();
        assert!(matches!(err, AigError::Duplicate(_)), "{err}");

        // .bench: signal defined twice.
        let err = parse_bench("INPUT(a)\nf = NOT(a)\nf = BUFF(a)\nOUTPUT(f)\n").unwrap_err();
        assert!(matches!(err, AigError::Duplicate(_)), "{err}");
    }

    #[test]
    fn bench_combinational_cycles_are_rejected() {
        let err = parse_bench("INPUT(a)\nf = AND(g, a)\ng = AND(f, a)\nOUTPUT(f)\n").unwrap_err();
        assert!(matches!(err, AigError::Cycle(_)), "{err}");
        // A cycle through a DFF is fine (sequential feedback).
        let aig = parse_bench("INPUT(a)\nq = DFF(f)\nf = XOR(q, a)\nOUTPUT(q)\n").unwrap();
        assert_eq!(aig.num_latches(), 1);
        // Toggle when a is held high.
        let outs = aig.simulate(&[vec![true], vec![true], vec![true], vec![true]]);
        assert_eq!(outs.iter().map(|o| o[0]).collect::<Vec<_>>(), [false, true, false, true]);
    }

    #[test]
    fn format_sniffing_uses_extension_then_header() {
        assert!(is_netlist_path("designs/foo.aag"));
        assert!(is_netlist_path("foo.BENCH"));
        assert!(!is_netlist_path("foo.v"));
        let aig = parse_netlist(HALF_ADDER_AAG.as_bytes(), None).unwrap();
        assert_eq!(aig.num_ands(), 3);
        let bench = b"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n";
        let aig = parse_netlist(bench, None).unwrap();
        assert_eq!(aig.num_inputs(), 1);
        let err = parse_netlist(b"module m; endmodule", None).unwrap_err();
        assert!(matches!(err, AigError::Parse(_)), "{err}");
    }
}
