//! Property tests for the structural frontend: every randomly generated AIG
//! must survive the format round-trips byte-exactly or behavior-exactly, the
//! ℒlr conversion must agree with direct bit-level simulation, and truncated
//! binary streams must never parse.

use lr_aig::{parse_aag, parse_aig_binary, random_aig, AigError, GenConfig};
use lr_bv::BitVec;
use lr_ir::StreamInputs;
use proptest::prelude::*;

const CYCLES: usize = 5;

fn shape(inputs: u32, latches: u32, ands: u32, outputs: u32) -> GenConfig {
    GenConfig { inputs, latches, ands, outputs }
}

/// Deterministic stimulus from a seed, one bool vector per cycle.
fn stimulus(seed: u64, inputs: usize) -> Vec<Vec<bool>> {
    let mut x = seed ^ 0x5DEECE66D;
    let mut bit = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x & 1 == 1
    };
    (0..CYCLES).map(|_| (0..inputs).map(|_| bit()).collect()).collect()
}

prop_compose! {
    fn aig_shape()(
        seed in 0u64..1 << 48,
        inputs in 1u32..10,
        latches in 0u32..5,
        ands in 1u32..300,
        outputs in 1u32..7,
        stim_seed in 0u64..1 << 48,
    ) -> (u64, GenConfig, u64) {
        (seed, shape(inputs, latches, ands, outputs), stim_seed)
    }
}

proptest! {
    /// parse(write(aig)) is structurally identical for ASCII AIGER: the
    /// generator emits canonical numbering and the parser re-derives it.
    #[test]
    fn ascii_round_trip_is_exact((seed, config, _) in aig_shape()) {
        let aig = random_aig(seed, &config);
        let again = parse_aag(&aig.to_aag()).unwrap().with_name(aig.name());
        prop_assert_eq!(aig, again);
    }

    /// The binary and ASCII writers agree behaviorally: both round-trips
    /// simulate identically on random stimulus (the binary writer may renumber
    /// gates, so structural equality is not required).
    #[test]
    fn binary_and_ascii_agree((seed, config, stim_seed) in aig_shape()) {
        let aig = random_aig(seed, &config);
        let stim = stimulus(stim_seed, aig.num_inputs());
        let from_ascii = parse_aag(&aig.to_aag()).unwrap();
        let from_binary = parse_aig_binary(&aig.to_aig_binary()).unwrap();
        prop_assert_eq!(from_ascii.simulate(&stim), aig.simulate(&stim));
        prop_assert_eq!(from_binary.simulate(&stim), aig.simulate(&stim));
    }

    /// parse → Prog → interpret matches direct AIG simulation cycle-for-cycle,
    /// latches included.
    #[test]
    fn prog_interpretation_matches_simulation((seed, config, stim_seed) in aig_shape()) {
        let aig = parse_aag(&random_aig(seed, &config).to_aag()).unwrap();
        let prog = aig.to_prog();
        prop_assert!(prog.well_formed().is_ok());
        let stim = stimulus(stim_seed, aig.num_inputs());
        let expected = aig.simulate(&stim);
        let mut env = StreamInputs::new();
        for (i, name) in aig.input_names().iter().enumerate() {
            let trace = stim.iter().map(|s| BitVec::from_u64(u64::from(s[i]), 1)).collect();
            env.set_trace(name.clone(), trace);
        }
        let got = prog.interp_trace(&env, CYCLES as u32 - 1).unwrap();
        for (t, want) in expected.iter().enumerate() {
            for (bit, &want_bit) in want.iter().enumerate() {
                prop_assert_eq!(got[t].bit(bit as u32), want_bit, "cycle {} output {}", t, bit);
            }
        }
    }

    /// Any truncation inside the delta-compressed AND section is rejected —
    /// never silently parsed as a smaller netlist.
    #[test]
    fn truncated_binary_never_parses((seed, config, cut_seed) in aig_shape()) {
        let aig = random_aig(seed, &config);
        let bytes = aig.to_aig_binary();
        // The symbol table trails the delta stream; everything before it is
        // header + latch/output lines + exactly the delta bytes.
        let symbols: usize = aig
            .input_names()
            .iter()
            .enumerate()
            .map(|(k, n)| format!("i{k} {n}\n").len())
            .sum::<usize>()
            + aig
                .outputs()
                .iter()
                .enumerate()
                .map(|(k, o)| format!("o{k} {}\n", o.name).len())
                .sum::<usize>();
        let delta_end = bytes.len() - symbols;
        // Each of the 2A deltas is at least one byte, so this cut always lands
        // in (or at the start of) the delta stream.
        let span = (2 * aig.num_ands()).min(delta_end);
        let cut = delta_end - 1 - (cut_seed as usize % span);
        let err = parse_aig_binary(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, AigError::Truncated(_)),
            "cut at {} of {} gave {:?}", cut, bytes.len(), err
        );
    }
}
