//! Regenerates the committed AIGER fixtures under `crates/bench/fixtures/aig/`:
//!
//! ```text
//! $ cargo run -p lr_aig --example gen_fixtures -- crates/bench/fixtures/aig
//! ```
//!
//! Seeds and shapes are fixed, so the fixtures are reproducible byte-for-byte;
//! `exp_aig` maps them and gates the deterministic cone accounting in CI.

use lr_aig::{random_aig, GenConfig};

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "crates/bench/fixtures/aig".to_string());
    let dir = std::path::Path::new(&dir);

    // The large ASCII fixture: a >=1000-AND sequential netlist, the size class
    // the cone partitioner exists for.
    let large =
        random_aig(0xA16_F1C5, &GenConfig { inputs: 12, latches: 6, ands: 1100, outputs: 8 });
    std::fs::write(dir.join("rand_large.aag"), large.to_aag()).expect("write rand_large.aag");
    println!("rand_large.aag: {} ANDs, {} latches", large.num_ands(), large.num_latches());

    // The binary fixture: mid-sized, exercising the delta-compressed reader on
    // a committed file rather than only on round-trip property tests.
    let mid = random_aig(0x5EED_B1A5, &GenConfig { inputs: 8, latches: 4, ands: 220, outputs: 6 });
    std::fs::write(dir.join("rand_mid.aig"), mid.to_aig_binary()).expect("write rand_mid.aig");
    println!("rand_mid.aig: {} ANDs, {} latches", mid.num_ands(), mid.num_latches());
}
