//! # lr-sketch: architecture-independent sketch templates and sketch generation
//!
//! Sketch templates (paper §2.2, §4.3) capture common FPGA implementation patterns
//! without naming any architecture-specific primitive. Specializing a template
//! against an [`Architecture`] description produces a *sketch*: an ℒsketch program
//! whose holes the synthesis engine fills.
//!
//! The five templates of the paper are provided:
//!
//! | template | pattern captured |
//! |---|---|
//! | [`Template::Dsp`] | a single DSP instance with all ports/parameters as holes |
//! | [`Template::Bitwise`] | one LUT per output bit over the corresponding input bits |
//! | [`Template::BitwiseWithCarry`] | per-bit LUTs feeding a ripple carry (add/sub-style) |
//! | [`Template::Comparison`] | a LUT ripple that folds a per-bit comparison into one bit |
//! | [`Template::Multiplication`] | LUT partial products summed by LUT-based ripple adders |
//!
//! Templates never mention `DSP48E2`, `LUT6`, or any other concrete primitive; the
//! [`Architecture`] supplies those during generation, which is what makes a new
//! architecture supportable by writing only an architecture description.

pub mod guidance;

use std::fmt;

use lr_arch::Architecture;
use lr_ir::{BvOp, NodeId, Prog, ProgBuilder};

pub use guidance::{rank_for_evidence, rank_from_evidence, rank_templates, rank_templates_for};

/// The architecture-independent sketch templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Template {
    /// A single DSP with holes for its ports and parameters (`--template dsp`).
    Dsp,
    /// One LUT per output bit (bitwise logic).
    Bitwise,
    /// Per-bit LUTs plus a LUT-built ripple carry (addition/subtraction).
    BitwiseWithCarry,
    /// A comparison folded through a 1-bit LUT ripple.
    Comparison,
    /// LUT-based multiplication (partial products + ripple adders).
    Multiplication,
}

impl Template {
    /// All templates, in the order the paper lists them.
    pub fn all() -> [Template; 5] {
        [
            Template::Dsp,
            Template::Bitwise,
            Template::BitwiseWithCarry,
            Template::Comparison,
            Template::Multiplication,
        ]
    }

    /// The command-line name of the template (`--template <name>`).
    pub fn cli_name(&self) -> &'static str {
        match self {
            Template::Dsp => "dsp",
            Template::Bitwise => "bitwise",
            Template::BitwiseWithCarry => "bitwise-with-carry",
            Template::Comparison => "comparison",
            Template::Multiplication => "multiplication",
        }
    }

    /// Parses a command-line template name.
    pub fn from_cli_name(name: &str) -> Option<Template> {
        Template::all().into_iter().find(|t| t.cli_name() == name)
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.cli_name())
    }
}

/// An error produced during sketch generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// The template needs a primitive interface the architecture does not implement
    /// (e.g. the `dsp` template on SOFA).
    MissingInterface {
        /// The template requested.
        template: &'static str,
        /// The missing interface.
        interface: &'static str,
        /// The architecture.
        architecture: String,
    },
    /// The design shape is outside what the template supports (e.g. a design wider
    /// than the DSP's multiplier, or a multiplication template over a width that
    /// would need more LUTs than the sketch budget allows).
    Unsupported(String),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::MissingInterface { template, interface, architecture } => write!(
                f,
                "template `{template}` needs the {interface} interface, which {architecture} does not implement"
            ),
            SketchError::Unsupported(msg) => write!(f, "unsupported design for template: {msg}"),
        }
    }
}

impl std::error::Error for SketchError {}

/// Generates a sketch for `spec` (whose inputs and output width the sketch must
/// match) by specializing `template` against `arch`.
///
/// # Errors
/// Returns [`SketchError`] if the architecture lacks a needed primitive interface or
/// the design shape is out of the template's range.
pub fn generate_sketch(
    template: Template,
    arch: &Architecture,
    spec: &Prog,
) -> Result<Prog, SketchError> {
    let mut sp = lr_trace::span("specialize");
    let inputs = spec.free_vars();
    let out_width = spec.width(spec.root());
    let name = format!("{}_{}_sketch", spec.name(), template.cli_name());
    let sketch = match template {
        Template::Dsp => dsp_sketch(&name, arch, &inputs, out_width),
        Template::Bitwise => bitwise_sketch(&name, arch, &inputs, out_width, 0),
        Template::BitwiseWithCarry => carry_sketch(&name, arch, &inputs, out_width),
        Template::Comparison => comparison_sketch(&name, arch, &inputs),
        Template::Multiplication => multiplication_sketch(&name, arch, &inputs, out_width),
    };
    if sp.is_active() {
        sp.attr("template", template as u64);
        sp.attr("inputs", inputs.len() as u64);
        sp.attr("out_width", u64::from(out_width));
        if let Ok(sketch) = &sketch {
            sp.attr("holes", sketch.holes().len() as u64);
        }
    }
    sketch
}

fn dsp_sketch(
    name: &str,
    arch: &Architecture,
    inputs: &[(String, u32)],
    out_width: u32,
) -> Result<Prog, SketchError> {
    if !arch.has_dsp() {
        return Err(SketchError::MissingInterface {
            template: "dsp",
            interface: "DSP",
            architecture: arch.name().to_string(),
        });
    }
    let max_w = arch.dsp_max_operand_width().unwrap_or(18);
    if inputs.iter().any(|(_, w)| *w > max_w) {
        return Err(SketchError::Unsupported(format!(
            "input wider than the DSP multiplier ({max_w} bits)"
        )));
    }
    let mut b = ProgBuilder::new(name);
    let mut design_inputs = Vec::new();
    for (input_name, width) in inputs {
        let id = b.input(input_name, *width);
        design_inputs.push((input_name.clone(), id, *width));
    }
    let dsp = arch.instantiate_dsp(&mut b, &design_inputs, 0).expect("architecture reports a DSP");
    if out_width > dsp.output_width {
        return Err(SketchError::Unsupported(format!(
            "output wider than the DSP output ({} bits)",
            dsp.output_width
        )));
    }
    let out = if out_width == dsp.output_width {
        dsp.node
    } else {
        b.extract(dsp.node, out_width - 1, 0)
    };
    Ok(b.finish(out))
}

/// Per-output-bit LUTs over the same bit position of every input. `extra_stages`
/// registers are appended to every output bit (used by the pipelined variants).
fn bitwise_sketch(
    name: &str,
    arch: &Architecture,
    inputs: &[(String, u32)],
    out_width: u32,
    extra_stages: u32,
) -> Result<Prog, SketchError> {
    if inputs.len() as u32 > arch.lut_size() {
        return Err(SketchError::Unsupported(format!(
            "bitwise template supports at most {} inputs on {}",
            arch.lut_size(),
            arch.name()
        )));
    }
    let mut b = ProgBuilder::new(name);
    let mut input_ids = Vec::new();
    for (input_name, width) in inputs {
        input_ids.push((b.input(input_name, *width), *width));
    }
    let mut bits = Vec::new();
    for bit in 0..out_width {
        let lut_inputs: Vec<NodeId> = input_ids
            .iter()
            .map(|&(id, w)| {
                let idx = bit.min(w - 1);
                b.extract(id, idx, idx)
            })
            .collect();
        let mut out_bit = arch.instantiate_lut(&mut b, &lut_inputs, bit as usize);
        for _ in 0..extra_stages {
            out_bit = b.reg(out_bit, 1);
        }
        bits.push(out_bit);
    }
    let root = concat_bits(&mut b, &bits);
    Ok(b.finish(root))
}

/// Per-bit sum LUT plus a per-bit carry LUT forming a ripple chain — the
/// "carry from LUTs" lowering the paper mentions for architectures (like SOFA)
/// without a hard carry primitive.
fn carry_sketch(
    name: &str,
    arch: &Architecture,
    inputs: &[(String, u32)],
    out_width: u32,
) -> Result<Prog, SketchError> {
    if inputs.len() != 2 {
        return Err(SketchError::Unsupported(
            "bitwise-with-carry expects exactly two inputs".to_string(),
        ));
    }
    if arch.lut_size() < 3 {
        return Err(SketchError::MissingInterface {
            template: "bitwise-with-carry",
            interface: "LUT3+",
            architecture: arch.name().to_string(),
        });
    }
    let mut b = ProgBuilder::new(name);
    let mut input_ids = Vec::new();
    for (input_name, width) in inputs {
        input_ids.push((b.input(input_name, *width), *width));
    }
    let mut carry = b.constant_u64(0, 1);
    let mut bits = Vec::new();
    for bit in 0..out_width {
        let xa = {
            let (id, w) = input_ids[0];
            let idx = bit.min(w - 1);
            b.extract(id, idx, idx)
        };
        let xb = {
            let (id, w) = input_ids[1];
            let idx = bit.min(w - 1);
            b.extract(id, idx, idx)
        };
        let sum = arch.instantiate_lut(&mut b, &[xa, xb, carry], (2 * bit) as usize);
        let next_carry = arch.instantiate_lut(&mut b, &[xa, xb, carry], (2 * bit + 1) as usize);
        bits.push(sum);
        carry = next_carry;
    }
    let root = concat_bits(&mut b, &bits);
    Ok(b.finish(root))
}

/// A comparison folded through a chain of 1-bit LUTs: each stage combines one bit of
/// each operand with the running result.
fn comparison_sketch(
    name: &str,
    arch: &Architecture,
    inputs: &[(String, u32)],
) -> Result<Prog, SketchError> {
    if inputs.len() != 2 {
        return Err(SketchError::Unsupported("comparison expects exactly two inputs".to_string()));
    }
    if arch.lut_size() < 3 {
        return Err(SketchError::MissingInterface {
            template: "comparison",
            interface: "LUT3+",
            architecture: arch.name().to_string(),
        });
    }
    let mut b = ProgBuilder::new(name);
    let mut input_ids = Vec::new();
    for (input_name, width) in inputs {
        input_ids.push((b.input(input_name, *width), *width));
    }
    let width = input_ids.iter().map(|&(_, w)| w).max().unwrap_or(1);
    let mut acc = b.constant_u64(0, 1);
    for bit in 0..width {
        let xa = {
            let (id, w) = input_ids[0];
            let idx = bit.min(w - 1);
            b.extract(id, idx, idx)
        };
        let xb = {
            let (id, w) = input_ids[1];
            let idx = bit.min(w - 1);
            b.extract(id, idx, idx)
        };
        acc = arch.instantiate_lut(&mut b, &[xa, xb, acc], bit as usize);
    }
    Ok(b.finish(acc))
}

/// LUT-based multiplication: AND-style partial-product LUTs summed by LUT ripple
/// adders. Deliberately bounded to small widths — the sketch grows quadratically,
/// which is exactly why DSP mapping matters.
fn multiplication_sketch(
    name: &str,
    arch: &Architecture,
    inputs: &[(String, u32)],
    out_width: u32,
) -> Result<Prog, SketchError> {
    if inputs.len() != 2 {
        return Err(SketchError::Unsupported(
            "multiplication expects exactly two inputs".to_string(),
        ));
    }
    if out_width > 6 {
        return Err(SketchError::Unsupported(format!(
            "LUT-based multiplication sketch is limited to 6 output bits, requested {out_width}"
        )));
    }
    let mut b = ProgBuilder::new(name);
    let mut input_ids = Vec::new();
    for (input_name, width) in inputs {
        input_ids.push((b.input(input_name, *width), *width));
    }
    let (a_id, a_w) = input_ids[0];
    let (b_id, b_w) = input_ids[1];
    let mut lut_counter = 0usize;
    // Partial products pp[i][j] = LUT(a[i], b[j]) (the hole lets the solver pick AND).
    let mut acc: Vec<NodeId> = Vec::new();
    let zero1 = b.constant_u64(0, 1);
    for _ in 0..out_width {
        acc.push(zero1);
    }
    for i in 0..a_w.min(out_width) {
        let mut carry = zero1;
        for j in 0..b_w.min(out_width - i) {
            let ai = b.extract(a_id, i, i);
            let bj = b.extract(b_id, j, j);
            let pp = arch.instantiate_lut(&mut b, &[ai, bj], lut_counter);
            lut_counter += 1;
            let k = (i + j) as usize;
            // acc[k], pp, carry -> sum and carry via two LUTs.
            let sum = arch.instantiate_lut(&mut b, &[acc[k], pp, carry], lut_counter);
            lut_counter += 1;
            let new_carry = arch.instantiate_lut(&mut b, &[acc[k], pp, carry], lut_counter);
            lut_counter += 1;
            acc[k] = sum;
            carry = new_carry;
        }
    }
    let root = concat_bits(&mut b, &acc);
    Ok(b.finish(root))
}

fn concat_bits(b: &mut ProgBuilder, bits: &[NodeId]) -> NodeId {
    // bits[0] is the LSB; fold into {msb, ..., lsb}.
    let mut acc = bits[0];
    for &bit in &bits[1..] {
        acc = b.op2(BvOp::Concat, bit, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::ProgBuilder;

    fn spec_two_input(width: u32) -> Prog {
        let mut b = ProgBuilder::new("xor_spec");
        let a = b.input("a", width);
        let bb = b.input("b", width);
        let out = b.op2(BvOp::Xor, a, bb);
        b.finish(out)
    }

    fn spec_four_input(width: u32) -> Prog {
        let mut b = ProgBuilder::new("amab");
        let a = b.input("a", width);
        let bb = b.input("b", width);
        let c = b.input("c", width);
        let d = b.input("d", width);
        let sum = b.op2(BvOp::Add, a, bb);
        let prod = b.op2(BvOp::Mul, sum, c);
        let out = b.op2(BvOp::And, prod, d);
        b.finish(out)
    }

    #[test]
    fn template_names_round_trip() {
        for t in Template::all() {
            assert_eq!(Template::from_cli_name(t.cli_name()), Some(t));
        }
        assert_eq!(Template::from_cli_name("nope"), None);
        assert_eq!(Template::Dsp.to_string(), "dsp");
    }

    #[test]
    fn dsp_sketch_generates_for_all_dsp_architectures() {
        let spec = spec_four_input(8);
        for arch in Architecture::with_dsps() {
            let sketch = generate_sketch(Template::Dsp, &arch, &spec).unwrap();
            assert!(sketch.well_formed().is_ok(), "{}", arch.name());
            assert!(sketch.has_holes());
            assert_eq!(sketch.width(sketch.root()), 8);
            // The sketch's inputs must match the spec's (required by synthesis).
            assert_eq!(sketch.free_vars(), spec.free_vars());
        }
    }

    #[test]
    fn dsp_sketch_fails_cleanly_on_sofa() {
        let spec = spec_four_input(8);
        let err = generate_sketch(Template::Dsp, &Architecture::sofa(), &spec).unwrap_err();
        assert!(matches!(err, SketchError::MissingInterface { .. }));
        assert!(err.to_string().contains("SOFA"));
    }

    #[test]
    fn dsp_sketch_rejects_overwide_designs() {
        let spec = spec_four_input(24);
        let err = generate_sketch(Template::Dsp, &Architecture::xilinx_ultrascale_plus(), &spec)
            .unwrap_err();
        assert!(matches!(err, SketchError::Unsupported(_)));
    }

    #[test]
    fn bitwise_sketch_on_every_architecture() {
        let spec = spec_two_input(4);
        for arch in Architecture::all() {
            let sketch = generate_sketch(Template::Bitwise, &arch, &spec).unwrap();
            assert!(sketch.well_formed().is_ok(), "{}", arch.name());
            assert_eq!(sketch.width(sketch.root()), 4);
            assert_eq!(sketch.holes().len(), 4, "{}: one INIT hole per bit", arch.name());
        }
    }

    #[test]
    fn carry_and_comparison_and_multiplication_sketches_build() {
        let spec = spec_two_input(4);
        let arch = Architecture::sofa();
        let carry = generate_sketch(Template::BitwiseWithCarry, &arch, &spec).unwrap();
        assert!(carry.well_formed().is_ok());
        assert_eq!(carry.width(carry.root()), 4);
        assert_eq!(carry.holes().len(), 8);

        let cmp = generate_sketch(Template::Comparison, &arch, &spec).unwrap();
        assert!(cmp.well_formed().is_ok());
        assert_eq!(cmp.width(cmp.root()), 1);

        let mut b = ProgBuilder::new("mul_spec");
        let a = b.input("a", 3);
        let bb = b.input("b", 3);
        let out = b.op2(BvOp::Mul, a, bb);
        let mul_spec = b.finish(out);
        let mul = generate_sketch(Template::Multiplication, &arch, &mul_spec).unwrap();
        assert!(mul.well_formed().is_ok());
        assert_eq!(mul.width(mul.root()), 3);

        // Wide multiplications are rejected rather than exploding.
        let wide = spec_two_input(12);
        assert!(generate_sketch(Template::Multiplication, &arch, &wide).is_err());
    }

    #[test]
    fn bitwise_rejects_too_many_inputs() {
        let spec = spec_four_input(4);
        // SOFA's LUT4 can take 4 inputs, so this succeeds...
        assert!(generate_sketch(Template::Bitwise, &Architecture::sofa(), &spec).is_ok());
        // ...but a 5-input design cannot map to a LUT4 bitwise sketch.
        let mut b = ProgBuilder::new("five");
        let mut acc = b.input("i0", 2);
        for k in 1..5 {
            let x = b.input(&format!("i{k}"), 2);
            acc = b.op2(BvOp::Xor, acc, x);
        }
        let five = b.finish(acc);
        assert!(generate_sketch(Template::Bitwise, &Architecture::sofa(), &five).is_err());
    }
}
