//! Rule-driven sketch guidance: rank which templates to try first.
//!
//! The sketch templates describe disjoint hardware patterns, and trying them in
//! the wrong order wastes whole synthesis timeouts (a comparison design handed to
//! the multiplication template burns its budget before UNSAT). This module ranks
//! [`Template`]s from the *structural evidence* of the design's canonical form —
//! [`Prog::structural_evidence`] saturates the program under the shared
//! `lr_egraph` rule set first, so evidence is judged after disguises are gone: a
//! multiply hidden behind a DSP-style negate path still ranks the DSP templates
//! first, while a multiply-by-one ranks them last.

use lr_arch::Architecture;
use lr_ir::{Prog, StructuralEvidence};

use crate::Template;

/// Ranks all templates for `spec`, best first, from saturated-e-graph evidence.
///
/// Every template appears exactly once, so a caller that walks the ranking in
/// order degrades to "try everything" — the ranking only changes *which timeout
/// is spent first*, never what is reachable.
pub fn rank_templates(spec: &Prog) -> Vec<Template> {
    rank_from_evidence(&spec.structural_evidence())
}

/// [`rank_templates`] restricted to templates the architecture can instantiate
/// (e.g. SOFA has no DSP, so the DSP template is dropped rather than ranked).
pub fn rank_templates_for(spec: &Prog, arch: &Architecture) -> Vec<Template> {
    rank_for_evidence(&spec.structural_evidence(), arch)
}

/// Ranks directly from pre-computed evidence, filtered to what the architecture
/// can instantiate. Callers that already hold a canonical program (or that run
/// with the e-graph disabled and scan the raw program) avoid re-saturating.
pub fn rank_for_evidence(ev: &StructuralEvidence, arch: &Architecture) -> Vec<Template> {
    rank_from_evidence(ev).into_iter().filter(|t| *t != Template::Dsp || arch.has_dsp()).collect()
}

/// The ranking policy over evidence bits (separated for direct testing).
pub fn rank_from_evidence(ev: &StructuralEvidence) -> Vec<Template> {
    let mut ranked: Vec<(i32, Template)> = Vec::new();
    // Comparison designs: a 1-bit predicate root is decisive — nothing else maps
    // a predicate without wasting width.
    ranked.push((if ev.comparison { 100 } else { 0 }, Template::Comparison));
    // Multiplier evidence (partial-product sums) points at the DSP first — that is
    // the whole point of DSP mapping — with the LUT multiplication sketch as the
    // fallback for architectures where the DSP query fails.
    let mul_score = if ev.multiplier { 90 } else { 10 };
    ranked.push((mul_score, Template::Dsp));
    ranked.push((if ev.multiplier { 40 } else { 5 }, Template::Multiplication));
    // Carry chains (add/sub/neg surviving canonicalization) without a multiplier
    // favor the ripple-carry sketch; a DSP's ALU also covers them, which the DSP
    // entry above already accounts for.
    let carry_score = if ev.carry_arith && !ev.multiplier {
        80
    } else if ev.carry_arith {
        30
    } else {
        0
    };
    ranked.push((carry_score, Template::BitwiseWithCarry));
    // Pure per-bit work — bitwise logic, muxing (which per-bit LUTs absorb), or
    // shifts (constant shifts are wiring into LUT inputs) — favors the bitwise
    // template; it is also the fallback of last resort for anything else.
    let per_bit = ev.bitwise || ev.mux || ev.shifts;
    let bitwise_score =
        if per_bit && !ev.multiplier && !ev.carry_arith && !ev.comparison { 85 } else { 20 };
    ranked.push((bitwise_score, Template::Bitwise));
    ranked.sort_by_key(|&(score, _)| std::cmp::Reverse(score));
    ranked.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::{BvOp, ProgBuilder};

    fn ranked_first(spec: &Prog) -> Template {
        rank_templates(spec)[0]
    }

    #[test]
    fn multiplier_designs_rank_the_dsp_first_even_disguised() {
        // A plain multiply.
        let mut b = ProgBuilder::new("mul");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Mul, a, bb);
        let plain = b.finish(out);
        assert_eq!(ranked_first(&plain), Template::Dsp);

        // The same multiply behind a negate path: 0 − (a · (0 − b)).
        let mut b = ProgBuilder::new("mul_disguised");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let zero = b.constant_u64(0, 8);
        let nb = b.op2(BvOp::Sub, zero, bb);
        let prod = b.op2(BvOp::Mul, a, nb);
        let out = b.op2(BvOp::Sub, zero, prod);
        let disguised = b.finish(out);
        assert_eq!(ranked_first(&disguised), Template::Dsp);
    }

    #[test]
    fn comparison_designs_rank_the_comparison_template_first() {
        let mut b = ProgBuilder::new("cmp");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Ult, a, bb);
        let spec = b.finish(out);
        assert_eq!(ranked_first(&spec), Template::Comparison);
    }

    #[test]
    fn adders_without_multiplies_rank_the_carry_template_first() {
        let mut b = ProgBuilder::new("add");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Add, a, bb);
        let spec = b.finish(out);
        assert_eq!(ranked_first(&spec), Template::BitwiseWithCarry);
    }

    #[test]
    fn bitwise_designs_rank_the_bitwise_template_first() {
        // A multiply-by-one is noise: after saturation only the xor remains.
        let mut b = ProgBuilder::new("bitwise");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let one = b.constant_u64(1, 8);
        let noisy = b.op2(BvOp::Mul, a, one);
        let out = b.op2(BvOp::Xor, noisy, bb);
        let spec = b.finish(out);
        assert_eq!(ranked_first(&spec), Template::Bitwise);
    }

    #[test]
    fn every_template_appears_exactly_once() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 4);
        let spec = b.finish(a);
        let ranked = rank_templates(&spec);
        let mut sorted: Vec<&str> = ranked.iter().map(Template::cli_name).collect();
        sorted.sort_unstable();
        let mut all: Vec<&str> = Template::all().iter().map(Template::cli_name).collect();
        all.sort_unstable();
        assert_eq!(sorted, all);
    }

    #[test]
    fn architecture_filter_drops_missing_interfaces() {
        let mut b = ProgBuilder::new("mul");
        let a = b.input("a", 4);
        let bb = b.input("b", 4);
        let out = b.op2(BvOp::Mul, a, bb);
        let spec = b.finish(out);
        let sofa = Architecture::sofa();
        let ranked = rank_templates_for(&spec, &sofa);
        assert!(!ranked.contains(&Template::Dsp));
        assert_eq!(ranked.len(), Template::all().len() - 1);
        let xilinx = Architecture::xilinx_ultrascale_plus();
        assert!(rank_templates_for(&spec, &xilinx).contains(&Template::Dsp));
    }
}
