//! Soft-logic cost estimation (the LUT/register fallback of the baseline mappers).
//!
//! When a baseline's pattern rules cannot absorb the whole design into a DSP, the
//! remaining word-level operators are implemented in the FPGA fabric. This module
//! estimates that cost the way a generic technology mapper would: each word-level
//! operator is decomposed into per-bit logic functions and packed into k-input LUTs,
//! and every pipeline register costs one flip-flop per bit.
//!
//! The estimator intentionally mirrors the numbers the paper quotes for the failing
//! cases — e.g. a 16-bit `(a+b)*c&d` with two pipeline stages on the SOTA flow costs
//! one DSP plus tens of LUTs and tens of registers.

use lr_ir::{BvOp, Node, Prog};

/// Estimated soft-logic cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoftLogicEstimate {
    /// Logic elements (k-input LUTs, muxes, carry slices).
    pub logic_elements: usize,
    /// Register bits.
    pub registers: usize,
}

/// Estimates the soft-logic cost of a behavioral design.
///
/// `lut_size` is the architecture's LUT input count. When `mul_on_dsp` is true, the
/// (single) multiplication is assumed to be implemented by a DSP block and costs no
/// LUTs; otherwise it is implemented as an array multiplier in soft logic.
pub fn estimate_soft_logic(prog: &Prog, lut_size: u32, mul_on_dsp: bool) -> SoftLogicEstimate {
    let mut estimate = SoftLogicEstimate::default();
    let per_lut_inputs = lut_size.max(2) as usize;
    for (id, node) in prog.nodes() {
        let width = prog.width(id) as usize;
        match node {
            Node::Reg { init, .. } => estimate.registers += init.width() as usize,
            Node::Op(op, _) => match op {
                BvOp::And | BvOp::Or | BvOp::Xor | BvOp::Not | BvOp::Neg => {
                    // One 2-input function per bit; LUTs can absorb several.
                    estimate.logic_elements += width.div_ceil(per_lut_inputs / 2).max(1);
                }
                BvOp::Add | BvOp::Sub => {
                    // Carry-chain style: roughly one LE per bit.
                    estimate.logic_elements += width;
                }
                BvOp::Mul => {
                    if !mul_on_dsp {
                        // Array multiplier: ~w^2 / 2 LEs.
                        estimate.logic_elements += (width * width) / 2;
                    }
                }
                BvOp::Ite => estimate.logic_elements += width,
                BvOp::Eq | BvOp::Ult | BvOp::Ule | BvOp::Slt | BvOp::Sle => {
                    estimate.logic_elements += width.div_ceil(per_lut_inputs / 2).max(1);
                }
                BvOp::Shl | BvOp::Lshr | BvOp::Ashr | BvOp::Udiv | BvOp::Urem => {
                    estimate.logic_elements += width * 2;
                }
                // Pure wiring costs nothing.
                BvOp::Concat
                | BvOp::Extract { .. }
                | BvOp::ZeroExt { .. }
                | BvOp::SignExt { .. }
                | BvOp::RedAnd
                | BvOp::RedOr
                | BvOp::RedXor => {}
            },
            _ => {}
        }
    }
    estimate
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::ProgBuilder;

    #[test]
    fn registered_logic_costs_registers_and_lut() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 16);
        let x = b.input("b", 16);
        let and = b.op2(BvOp::And, a, x);
        let r = b.reg(and, 16);
        let prog = b.finish(r);
        let est = estimate_soft_logic(&prog, 6, false);
        assert_eq!(est.registers, 16);
        assert!(est.logic_elements >= 4);
    }

    #[test]
    fn soft_multiplier_is_much_bigger_than_dsp_multiplier() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 16);
        let x = b.input("b", 16);
        let m = b.op2(BvOp::Mul, a, x);
        let prog = b.finish(m);
        let soft = estimate_soft_logic(&prog, 6, false);
        let hard = estimate_soft_logic(&prog, 6, true);
        assert!(soft.logic_elements > 50);
        assert_eq!(hard.logic_elements, 0);
    }

    #[test]
    fn wiring_is_free() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 16);
        let hi = b.extract(a, 15, 8);
        let lo = b.extract(a, 7, 0);
        let swapped = b.op2(BvOp::Concat, lo, hi);
        let prog = b.finish(swapped);
        let est = estimate_soft_logic(&prog, 4, false);
        assert_eq!(est.logic_elements, 0);
        assert_eq!(est.registers, 0);
    }

    #[test]
    fn adders_cost_one_le_per_bit() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 12);
        let x = b.input("b", 12);
        let s = b.op2(BvOp::Add, a, x);
        let prog = b.finish(s);
        assert_eq!(estimate_soft_logic(&prog, 4, false).logic_elements, 12);
    }
}
