//! # lr-baselines: syntactic baseline technology mappers
//!
//! The paper compares Lakeroad against (a) proprietary state-of-the-art toolchains
//! and (b) Yosys, both of which infer DSPs with *hand-written syntactic pattern
//! rules* and fall back to generic LUT/register mapping when no rule matches. This
//! crate reproduces that mechanism:
//!
//! * [`recognize`] structurally analyses a behavioral ℒlr design and extracts the
//!   features a pattern rule would key on (pre-adder, post-operation, pipeline
//!   stages, width);
//! * [`BaselineTool`] holds a rule set per architecture — `SotaLike` has a richer
//!   rule list, `YosysLike` a narrow one, mirroring the relative completeness the
//!   paper measures;
//! * [`estimate`] maps the design with the given rule set and reports the resources
//!   used: one DSP when a rule matches the whole design, otherwise a DSP for the
//!   multiply (when available) plus LUTs/registers for whatever the rules could not
//!   absorb (this is exactly the 1 DSP + 32 registers + 16 LUTs failure mode of the
//!   paper's §2.1 walkthrough).
//!
//! These baselines are *models* of the commercial flows' mapping behaviour, not
//! re-implementations of the tools themselves; DESIGN.md discusses why this
//! substitution preserves the shape of the paper's Figure 6 and resource-reduction
//! results.

pub mod lutmap;

use lr_arch::ArchName;
use lr_ir::{BvOp, Node, NodeId, Prog};

/// The post-multiply operation of a recognized design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostKind {
    /// No post operation.
    None,
    /// `+` or `-` after the multiply.
    AddSub,
    /// `&`, `|`, or `^` after the multiply.
    Logic,
}

/// The structural features of a behavioral design that syntactic DSP-inference rules
/// pattern-match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecognizedPattern {
    /// Whether the design contains exactly one multiplication.
    pub single_multiply: bool,
    /// Whether an addition/subtraction feeds the multiplier (a pre-adder).
    pub pre_adder: bool,
    /// The operation applied to the multiplier result, if any.
    pub post: PostKind,
    /// Number of pipeline register stages after the datapath.
    pub stages: u32,
    /// Result width.
    pub width: u32,
    /// Number of distinct inputs.
    pub inputs: usize,
}

/// Structurally analyses a behavioral design. Returns `None` if the design does not
/// contain a multiplication at all (such designs are never DSP candidates).
pub fn recognize(prog: &Prog) -> Option<RecognizedPattern> {
    // Strip pipeline registers from the root.
    let mut node = prog.root();
    let mut stages = 0u32;
    while let Node::Reg { data, .. } = prog.node(node)? {
        stages += 1;
        node = *data;
    }
    let mut mul_count = 0usize;
    let mut pre_adder = false;
    count_muls(prog, node, &mut mul_count, &mut pre_adder);
    if mul_count == 0 {
        return None;
    }
    let post = match prog.node(node)? {
        Node::Op(BvOp::Mul, _) => PostKind::None,
        Node::Op(BvOp::Add | BvOp::Sub, args) => {
            if args.iter().any(|&a| subtree_has_mul(prog, a)) {
                PostKind::AddSub
            } else {
                PostKind::None
            }
        }
        Node::Op(BvOp::And | BvOp::Or | BvOp::Xor, args) => {
            if args.iter().any(|&a| subtree_has_mul(prog, a)) {
                PostKind::Logic
            } else {
                PostKind::None
            }
        }
        _ => PostKind::None,
    };
    Some(RecognizedPattern {
        single_multiply: mul_count == 1,
        pre_adder,
        post,
        stages,
        width: prog.width(prog.root()),
        inputs: prog.free_vars().len(),
    })
}

fn count_muls(prog: &Prog, node: NodeId, muls: &mut usize, pre_adder: &mut bool) {
    if let Some(Node::Op(op, args)) = prog.node(node) {
        if *op == BvOp::Mul {
            *muls += 1;
            for &a in args {
                if matches!(prog.node(a), Some(Node::Op(BvOp::Add | BvOp::Sub, _))) {
                    *pre_adder = true;
                }
            }
        }
        for &a in args {
            count_muls(prog, a, muls, pre_adder);
        }
    } else if let Some(Node::Reg { data, .. }) = prog.node(node) {
        count_muls(prog, *data, muls, pre_adder);
    }
}

fn subtree_has_mul(prog: &Prog, node: NodeId) -> bool {
    match prog.node(node) {
        Some(Node::Op(BvOp::Mul, _)) => true,
        Some(Node::Op(_, args)) => args.iter().any(|&a| subtree_has_mul(prog, a)),
        Some(Node::Reg { data, .. }) => subtree_has_mul(prog, *data),
        _ => false,
    }
}

/// Which baseline mapper to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineTool {
    /// The proprietary state-of-the-art flow for the architecture: a reasonably rich
    /// set of DSP-inference rules, still far from covering the DSP's full
    /// configuration space.
    SotaLike,
    /// The open-source Yosys flow: a much narrower rule set (and none at all for the
    /// Intel embedded multiplier, matching §5.1).
    YosysLike,
}

impl std::fmt::Display for BaselineTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineTool::SotaLike => write!(f, "SOTA (modelled)"),
            BaselineTool::YosysLike => write!(f, "Yosys (modelled)"),
        }
    }
}

/// Resource usage reported by a baseline mapping (compatible with
/// `lakeroad::Resources`, kept separate to avoid a dependency cycle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineResources {
    /// DSP blocks used.
    pub dsps: usize,
    /// Logic elements used.
    pub logic_elements: usize,
    /// Register bits used.
    pub registers: usize,
}

impl BaselineResources {
    /// Whether the mapping used exactly one DSP and nothing else.
    pub fn is_single_dsp(&self) -> bool {
        self.dsps == 1 && self.logic_elements == 0 && self.registers == 0
    }
}

/// Whether the tool's pattern rules absorb the *entire* design into a single DSP.
pub fn rule_matches(tool: BaselineTool, arch: ArchName, p: &RecognizedPattern) -> bool {
    if !p.single_multiply || p.width > 18 {
        return false;
    }
    match (tool, arch) {
        (BaselineTool::SotaLike, ArchName::XilinxUltraScalePlus) => {
            // Vivado-style inference: multiply, multiply-accumulate, and pre-add
            // multiply are inferred for shallow pipelines; the logic-unit modes and
            // deep pipelines are the documented gaps (§1, §2.1).
            match (p.pre_adder, p.post) {
                (false, PostKind::None) => p.stages <= 2,
                (false, PostKind::AddSub) => p.stages <= 2,
                (true, PostKind::None) => p.stages <= 1,
                (true, PostKind::AddSub) => p.stages <= 1,
                (_, PostKind::Logic) => false,
            }
        }
        (BaselineTool::SotaLike, ArchName::LatticeEcp5) => match p.post {
            PostKind::None => p.stages <= 1,
            PostKind::AddSub => !p.pre_adder && p.stages <= 1,
            PostKind::Logic => false,
        },
        (BaselineTool::SotaLike, ArchName::IntelCyclone10Lp) => {
            p.post == PostKind::None && !p.pre_adder && p.stages <= 1 && p.inputs == 2
        }
        (BaselineTool::YosysLike, ArchName::XilinxUltraScalePlus) => {
            // Yosys's dsp48 pass: plain multiplies with at most one register stage.
            p.post == PostKind::None && !p.pre_adder && p.stages <= 1
        }
        (BaselineTool::YosysLike, ArchName::LatticeEcp5) => {
            p.post == PostKind::None && !p.pre_adder && p.stages <= 1
        }
        // Yosys has no mapping for the Cyclone 10 LP embedded multiplier (§5.1:
        // "Yosys fails to map a single design on Intel").
        (BaselineTool::YosysLike, ArchName::IntelCyclone10Lp) => false,
        (_, ArchName::Sofa) => false,
    }
}

/// Maps a behavioral design with the modelled baseline and reports resources.
///
/// When the whole design matches an inference rule the result is one DSP. Otherwise
/// the tool still uses a DSP for the multiplication (if the architecture has one and
/// the rule set covers plain multiplies) and implements the remainder — pre-adders,
/// post-operations, and pipeline registers the DSP was not configured to absorb —
/// in soft logic, whose cost is estimated by [`lutmap`].
pub fn estimate(tool: BaselineTool, arch: ArchName, prog: &Prog) -> BaselineResources {
    let lut_size = match arch {
        ArchName::XilinxUltraScalePlus => 6,
        _ => 4,
    };
    let Some(pattern) = recognize(prog) else {
        // No multiply at all: pure soft-logic mapping.
        let est = lutmap::estimate_soft_logic(prog, lut_size, false);
        return BaselineResources {
            dsps: 0,
            logic_elements: est.logic_elements,
            registers: est.registers,
        };
    };
    if rule_matches(tool, arch, &pattern) {
        return BaselineResources { dsps: 1, logic_elements: 0, registers: 0 };
    }
    // Partial mapping: the multiply itself can still go to a DSP when a plain-mul
    // rule exists for this tool/architecture.
    let mul_only = RecognizedPattern {
        single_multiply: true,
        pre_adder: false,
        post: PostKind::None,
        stages: 0,
        width: pattern.width,
        inputs: 2,
    };
    let dsp_for_mul = rule_matches(tool, arch, &mul_only);
    let est = lutmap::estimate_soft_logic(prog, lut_size, dsp_for_mul);
    BaselineResources {
        dsps: if dsp_for_mul { 1 } else { 0 },
        logic_elements: est.logic_elements,
        registers: est.registers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::ProgBuilder;

    fn design(pre: bool, post: Option<BvOp>, stages: u32, width: u32) -> Prog {
        let mut b = ProgBuilder::new("d");
        let a = b.input("a", width);
        let x = b.input("b", width);
        let lhs = if pre {
            let c = b.input("c", width);
            let s = b.op2(BvOp::Add, a, x);
            b.op2(BvOp::Mul, s, c)
        } else {
            b.op2(BvOp::Mul, a, x)
        };
        let mut out = match post {
            None => lhs,
            Some(op) => {
                let d = b.input("d", width);
                b.op2(op, lhs, d)
            }
        };
        for _ in 0..stages {
            out = b.reg(out, width);
        }
        b.finish(out)
    }

    #[test]
    fn recognizer_extracts_features() {
        let p = recognize(&design(true, Some(BvOp::And), 2, 8)).unwrap();
        assert!(p.single_multiply);
        assert!(p.pre_adder);
        assert_eq!(p.post, PostKind::Logic);
        assert_eq!(p.stages, 2);
        assert_eq!(p.width, 8);

        let p = recognize(&design(false, None, 0, 16)).unwrap();
        assert!(!p.pre_adder);
        assert_eq!(p.post, PostKind::None);
        assert_eq!(p.stages, 0);

        // No multiply -> not a DSP candidate.
        let mut b = ProgBuilder::new("add");
        let a = b.input("a", 8);
        let x = b.input("b", 8);
        let s = b.op2(BvOp::Add, a, x);
        let prog = b.finish(s);
        assert!(recognize(&prog).is_none());
    }

    #[test]
    fn sota_maps_more_than_yosys() {
        // A multiply-accumulate maps on the SOTA model but not on the Yosys model.
        let mac = design(false, Some(BvOp::Add), 1, 8);
        let p = recognize(&mac).unwrap();
        assert!(rule_matches(BaselineTool::SotaLike, ArchName::XilinxUltraScalePlus, &p));
        assert!(!rule_matches(BaselineTool::YosysLike, ArchName::XilinxUltraScalePlus, &p));
        // Neither maps the logic-post-op design that Lakeroad handles (Figure 1).
        let ama = design(true, Some(BvOp::And), 1, 8);
        let p = recognize(&ama).unwrap();
        assert!(!rule_matches(BaselineTool::SotaLike, ArchName::XilinxUltraScalePlus, &p));
        assert!(!rule_matches(BaselineTool::YosysLike, ArchName::XilinxUltraScalePlus, &p));
    }

    #[test]
    fn yosys_never_maps_intel() {
        let mul = design(false, None, 0, 8);
        let p = recognize(&mul).unwrap();
        assert!(rule_matches(BaselineTool::SotaLike, ArchName::IntelCyclone10Lp, &p));
        assert!(!rule_matches(BaselineTool::YosysLike, ArchName::IntelCyclone10Lp, &p));
    }

    #[test]
    fn estimates_mirror_the_papers_walkthrough() {
        // add_mul_and (16 bits, 2 stages): the SOTA model uses one DSP plus soft
        // logic and registers, as in §2.1; Lakeroad's single-DSP result beats it.
        let ama = design(true, Some(BvOp::And), 2, 16);
        let sota = estimate(BaselineTool::SotaLike, ArchName::XilinxUltraScalePlus, &ama);
        assert_eq!(sota.dsps, 1);
        assert!(sota.logic_elements > 0);
        assert!(sota.registers > 0);
        assert!(!sota.is_single_dsp());

        // A plain registered multiply maps cleanly on both models.
        let mul = design(false, None, 1, 16);
        let sota = estimate(BaselineTool::SotaLike, ArchName::XilinxUltraScalePlus, &mul);
        assert!(sota.is_single_dsp());
        let yosys = estimate(BaselineTool::YosysLike, ArchName::XilinxUltraScalePlus, &mul);
        assert!(yosys.is_single_dsp());
    }

    #[test]
    fn yosys_uses_more_soft_logic_than_sota_on_average() {
        let designs = [
            design(true, Some(BvOp::And), 1, 8),
            design(false, Some(BvOp::Add), 1, 8),
            design(true, None, 2, 12),
            design(false, None, 3, 16),
        ];
        let total = |tool: BaselineTool| -> usize {
            designs
                .iter()
                .map(|d| {
                    let r = estimate(tool, ArchName::XilinxUltraScalePlus, d);
                    r.logic_elements + r.registers
                })
                .sum()
        };
        assert!(total(BaselineTool::YosysLike) >= total(BaselineTool::SotaLike));
    }
}
