//! The `lakeroad` command-line tool — the interface shown in the paper's §2.2:
//!
//! ```text
//! $ lakeroad --template dsp --arch-desc xilinx-ultrascale-plus add_mul_and.v
//! ```
//!
//! Reads a behavioral mini-Verilog module, maps it onto the requested architecture
//! with the requested sketch template, and writes the synthesized structural Verilog
//! to stdout (or `--output <file>`).

use std::process::ExitCode;
use std::time::Duration;

use lakeroad::{map_design_auto, map_verilog, MapConfig, MapOutcome, Template};
use lr_arch::{ArchName, Architecture};

/// Which sketch template(s) to try: a named template, or `auto` — the ranking the
/// rule-driven sketch guidance derives from the design's saturated e-graph.
enum TemplateChoice {
    Named(Template),
    Auto,
}

struct Options {
    template: TemplateChoice,
    arch: Architecture,
    input: String,
    output: Option<String>,
    timeout: Duration,
    incremental: bool,
    egraph: bool,
}

fn usage() -> String {
    "usage: lakeroad --template <auto|dsp|bitwise|bitwise-with-carry|comparison|multiplication>\n\
     \x20               --arch-desc <xilinx-ultrascale-plus|lattice-ecp5|intel-cyclone10lp|sofa>\n\
     \x20               [--timeout <seconds>] [--no-incremental] [--no-egraph] [--output <file>] <design.v>"
        .to_string()
}

fn parse_arch(name: &str) -> Option<Architecture> {
    let name = name.trim_end_matches(".yml").trim_end_matches(".yaml");
    let arch = match name {
        "xilinx-ultrascale-plus" | "xilinx" => ArchName::XilinxUltraScalePlus,
        "lattice-ecp5" | "lattice" | "ecp5" => ArchName::LatticeEcp5,
        "intel-cyclone10lp" | "intel" | "cyclone10lp" => ArchName::IntelCyclone10Lp,
        "sofa" => ArchName::Sofa,
        _ => return None,
    };
    Some(Architecture::load(arch))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut template = None;
    let mut arch = None;
    let mut input = None;
    let mut output = None;
    let mut timeout = Duration::from_secs(120);
    let mut incremental = true;
    let mut egraph = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--template" => {
                i += 1;
                let name = args.get(i).ok_or("--template needs a value")?;
                template = Some(if name == "auto" {
                    TemplateChoice::Auto
                } else {
                    TemplateChoice::Named(
                        Template::from_cli_name(name).ok_or(format!("unknown template `{name}`"))?,
                    )
                });
            }
            "--arch-desc" => {
                i += 1;
                let name = args.get(i).ok_or("--arch-desc needs a value")?;
                arch = Some(parse_arch(name).ok_or(format!("unknown architecture `{name}`"))?);
            }
            "--timeout" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .ok_or("--timeout needs a value")?
                    .parse()
                    .map_err(|_| "--timeout expects a number of seconds".to_string())?;
                timeout = Duration::from_secs(secs);
            }
            "--no-incremental" => incremental = false,
            "--no-egraph" => egraph = false,
            "--egraph" => egraph = true,
            "--output" | "-o" => {
                i += 1;
                output = Some(args.get(i).ok_or("--output needs a value")?.clone());
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    Ok(Options {
        template: template.ok_or(format!("missing --template\n{}", usage()))?,
        arch: arch.ok_or(format!("missing --arch-desc\n{}", usage()))?,
        input: input.ok_or(format!("missing input design\n{}", usage()))?,
        output,
        timeout,
        incremental,
        egraph,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let verilog = match std::fs::read_to_string(&options.input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", options.input);
            return ExitCode::from(2);
        }
    };
    let config = MapConfig {
        incremental: options.incremental,
        egraph: options.egraph,
        ..MapConfig::default().with_timeout(options.timeout)
    };
    let result = match options.template {
        TemplateChoice::Named(template) => {
            map_verilog(&verilog, template, &options.arch, &config)
        }
        TemplateChoice::Auto => lr_hdl::parse_and_elaborate(&verilog)
            .map_err(|e| lakeroad::MapError::Frontend(e.to_string()))
            .and_then(|spec| map_design_auto(&spec, &options.arch, &config)),
    };
    match result {
        Ok(MapOutcome::Success(mapped)) => {
            eprintln!(
                "mapped onto {} in {:.2?}: {} DSP, {} LEs, {} registers",
                options.arch.name(),
                mapped.elapsed,
                mapped.resources.dsps,
                mapped.resources.logic_elements,
                mapped.resources.registers
            );
            match options.output {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, &mapped.verilog) {
                        eprintln!("cannot write `{path}`: {e}");
                        return ExitCode::from(2);
                    }
                }
                None => println!("{}", mapped.verilog),
            }
            ExitCode::SUCCESS
        }
        Ok(MapOutcome::Unsat { elapsed, .. }) => {
            let what = match options.template {
                TemplateChoice::Named(t) => format!("the {t} sketch"),
                TemplateChoice::Auto => "any ranked sketch".to_string(),
            };
            eprintln!("UNSAT after {elapsed:.2?}: no configuration of {what} implements this design");
            ExitCode::FAILURE
        }
        Ok(MapOutcome::Timeout { elapsed }) => {
            eprintln!("timeout after {elapsed:.2?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
