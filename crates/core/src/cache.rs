//! Content-addressed synthesis caching: the `lr_core` side of the `lr_serve`
//! batch-serving subsystem.
//!
//! A mapping run is expensive (CEGIS over SAT) but its *inputs* are small: the
//! behavioral spec, the architecture, the sketch template, and the synthesis
//! budget. Once the spec has been canonicalized by equality saturation
//! ([`lr_ir::Prog::saturated`] + cost-based extraction), semantically-equal
//! designs collapse to one normal form — so a hash of the canonical spec is a
//! *content address* under which the synthesis verdict can be reused across
//! requests, batches, and (with `lr_serve`'s on-disk persistence) processes.
//!
//! This module defines what a cache stores and how keys are computed; the
//! sharded map, persistence, and statistics live in `lr_serve`, which plugs in
//! through [`MapCache`] on [`crate::MapConfig::cache`]. Three design points:
//!
//! * **Keys are AC-normalized.** Extraction breaks cost ties deterministically,
//!   but two *different* embeddings of equivalent specs can still extract
//!   commuted or re-associated forms of the same expression. The fingerprint
//!   therefore hashes commutative-associative operator chains as sorted
//!   multisets, so `a+(b+c)` and `(c+a)+b` share a key.
//! * **Entries replay hole assignments, not programs.** A success is stored as
//!   the synthesized hole values; a hit regenerates the sketch and re-fills it.
//!   That keeps entries tiny and forces every replay through the same
//!   specialization path as synthesis.
//! * **Success hits are verified.** A replayed implementation is checked
//!   against the spec by `lr_ir` interpretation on pseudorandom stimulus
//!   before it is served (see [`replay`]); a stale or hash-colliding entry
//!   fails the check, is invalidated, and the request falls back to real
//!   synthesis. UNSAT entries have nothing to replay, so they rest on the
//!   content address alone — which is why the key is 128 bits and why the
//!   on-disk format carries a version header that must be bumped whenever the
//!   sketch generator or synthesis semantics change what is mappable.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

use lr_arch::Architecture;
use lr_bv::BitVec;
use lr_ir::{HoleDomain, Node, NodeId, Prog, StreamInputs};
use lr_sketch::Template;
use lr_synth::SynthesisStats;

use crate::{count_resources, generate_sketch, pipeline_depth, MapConfig, MappedDesign};

/// A 128-bit content address: spec fingerprint × architecture × template ×
/// timeout tier. Displayed (and persisted) as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub [u64; 2]);

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl FromStr for CacheKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(format!("cache key must be 32 hex digits, got {}", s.len()));
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|e| e.to_string())?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|e| e.to_string())?;
        Ok(CacheKey([hi, lo]))
    }
}

impl CacheKey {
    /// The shard index for this key among `shards` shards.
    pub fn shard(&self, shards: usize) -> usize {
        (self.0[0] as usize) % shards.max(1)
    }

    /// Computes the content address of one mapping job. `spec` must be the
    /// *prepared* spec — already canonicalized when the e-graph is on — since the
    /// whole point is that equal canonical forms share an address.
    pub fn for_mapping(
        spec: &Prog,
        arch: &Architecture,
        template: Template,
        timeout: Duration,
    ) -> CacheKey {
        let mut mix = Mix::new();
        let (a, b) = spec_fingerprint(spec);
        mix.u64(a);
        mix.u64(b);
        mix.str(&arch.name().to_string());
        mix.str(template.cli_name());
        mix.u64(timeout_tier(timeout) as u64);
        CacheKey(mix.finish())
    }
}

/// The synthesis budget bucket a key falls into. Budgets inside one tier share
/// cache entries; the paper's per-architecture timeouts (120 s / 40 s / 20 s)
/// land in distinct tiers, so a verdict found under a generous budget is never
/// served to a run that advertised a much tighter one (or vice versa).
pub fn timeout_tier(timeout: Duration) -> u8 {
    match timeout.as_secs() {
        0..=4 => 0,
        5..=29 => 1,
        30..=89 => 2,
        _ => 3,
    }
}

/// What a cache stores per key: the verdict worth replaying. Timeouts are never
/// cached — they say nothing about the design, only about the budget.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedOutcome {
    /// Synthesis succeeded with these hole values; a hit re-specializes the
    /// sketch and re-fills the holes (see [`replay`]).
    Success {
        /// The synthesized hole assignment.
        holes: BTreeMap<String, BitVec>,
    },
    /// The solver proved no completion of the template's sketch implements the
    /// spec. Valid for every budget in the key's tier (UNSAT is semantic).
    Unsat,
}

/// The hook `lr_serve` implements: a concurrent, content-addressed store of
/// synthesis verdicts. `map_design` consults it before synthesis and feeds it
/// after; implementations must be safe to share across scheduler workers.
pub trait MapCache: Send + Sync {
    /// Looks up a verdict. Implementations should count hits/misses themselves.
    fn lookup(&self, key: &CacheKey) -> Option<CachedOutcome>;

    /// Records a verdict (last writer wins).
    fn store(&self, key: CacheKey, outcome: CachedOutcome);

    /// Drops an entry whose replay failed verification, so the slot is rewritten
    /// by the synthesis fallback instead of poisoning every future lookup.
    fn invalidate(&self, key: &CacheKey);
}

// ---------------------------------------------------------------------------
// Spec fingerprinting
// ---------------------------------------------------------------------------

/// Two independent FNV-1a streams over the same bytes; 128 bits keeps accidental
/// collisions out of reach of any realistic workload, and verified replay makes
/// even a collision harmless.
struct Mix {
    a: u64,
    b: u64,
}

impl Mix {
    fn new() -> Mix {
        // FNV-1a offset basis, and the same basis re-mixed with the FNV prime so
        // the two lanes decorrelate from the first byte.
        Mix { a: 0xcbf2_9ce4_8422_2325, b: 0xcbf2_9ce4_8422_2325 ^ 0x0100_0000_01b3 }
    }

    fn u8(&mut self, byte: u8) {
        const PRIME: u64 = 0x0100_0000_01b3;
        // The second lane must multiply by an *odd* constant — an even one
        // shifts entropy out of the low bits on every step and degenerates the
        // lane. The golden-ratio constant is odd and mixes well.
        const PRIME_B: u64 = 0x9E37_79B9_7F4A_7C15;
        self.a = (self.a ^ byte as u64).wrapping_mul(PRIME);
        self.b = (self.b ^ byte.rotate_left(3) as u64).wrapping_mul(PRIME_B);
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.u8(byte);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for byte in s.bytes() {
            self.u8(byte);
        }
    }

    fn bitvec(&mut self, bv: &BitVec) {
        self.u64(bv.width() as u64);
        self.str(&bv.to_hex_string());
    }

    fn finish(&self) -> [u64; 2] {
        [self.a, self.b]
    }
}

/// Operators that are both commutative and associative: their operand chains are
/// hashed as sorted multisets so that tree shape and operand order cannot split
/// equal specs across keys.
fn is_ac(op: lr_ir::BvOp) -> bool {
    use lr_ir::BvOp;
    matches!(op, BvOp::Add | BvOp::Mul | BvOp::And | BvOp::Or | BvOp::Xor)
}

/// A structural fingerprint of a program, invariant under node renumbering and
/// under commutation/re-association of AC operator chains. Cycles through
/// registers (counters, accumulators) hash by back-edge *distance*, which is
/// isomorphism-invariant.
pub fn spec_fingerprint(spec: &Prog) -> (u64, u64) {
    fn node_fp(
        prog: &Prog,
        id: NodeId,
        open: &mut Vec<NodeId>,
        memo: &mut std::collections::HashMap<NodeId, [u64; 2]>,
    ) -> [u64; 2] {
        if let Some(pos) = open.iter().rposition(|&o| o == id) {
            // Back edge (feedback through a register): hash the distance to the
            // open node, the de-Bruijn trick that names cycles canonically.
            let mut m = Mix::new();
            m.str("back");
            m.u64((open.len() - pos) as u64);
            return m.finish();
        }
        // Only cache below any open cycle: a node's hash depends on back-edge
        // distances, which change with the path taken to reach it.
        if open.is_empty() {
            if let Some(&fp) = memo.get(&id) {
                return fp;
            }
        }
        let mut m = Mix::new();
        match prog.node(id).expect("node id belongs to the program") {
            Node::BV(bv) => {
                m.str("const");
                m.bitvec(bv);
            }
            Node::Var { name, width } => {
                m.str("var");
                m.str(name);
                m.u64(*width as u64);
            }
            Node::Hole { name, width, domain } => {
                m.str("hole");
                m.str(name);
                m.u64(*width as u64);
                match domain {
                    HoleDomain::AnyConstant => m.str("any"),
                    HoleDomain::Choice(vs) => {
                        m.str("choice");
                        m.u64(vs.len() as u64);
                        for v in vs {
                            m.bitvec(v);
                        }
                    }
                    HoleDomain::LessThan(bound) => {
                        m.str("lt");
                        m.bitvec(bound);
                    }
                }
            }
            Node::Reg { data, init } => {
                m.str("reg");
                m.bitvec(init);
                open.push(id);
                let fp = node_fp(prog, *data, open, memo);
                open.pop();
                m.u64(fp[0]);
                m.u64(fp[1]);
            }
            Node::Op(op, args) => {
                if is_ac(*op) {
                    // Flatten the same-op chain and hash its operands order-free.
                    let mut operands: Vec<[u64; 2]> = Vec::new();
                    let mut stack: Vec<NodeId> = args.iter().rev().copied().collect();
                    while let Some(a) = stack.pop() {
                        match prog.node(a) {
                            Some(Node::Op(inner, inner_args)) if inner == op => {
                                stack.extend(inner_args.iter().rev().copied());
                            }
                            _ => operands.push(node_fp(prog, a, open, memo)),
                        }
                    }
                    operands.sort_unstable();
                    m.str("ac-op");
                    m.str(&op.to_string());
                    m.u64(operands.len() as u64);
                    for fp in operands {
                        m.u64(fp[0]);
                        m.u64(fp[1]);
                    }
                } else {
                    m.str("op");
                    m.str(&op.to_string());
                    let mut fps: Vec<[u64; 2]> =
                        args.iter().map(|&a| node_fp(prog, a, open, memo)).collect();
                    // `Eq` is commutative but (being 1-bit-valued) not usefully
                    // associative: sort its two operand hashes in place.
                    if *op == lr_ir::BvOp::Eq {
                        fps.sort_unstable();
                    }
                    for fp in fps {
                        m.u64(fp[0]);
                        m.u64(fp[1]);
                    }
                }
            }
            Node::Prim(p) => {
                m.str("prim");
                m.str(&p.module);
                m.str(&p.interface);
                m.str(&p.output_port);
                m.u64(p.bindings.len() as u64);
                for (port, &target) in &p.bindings {
                    m.str(port);
                    let fp = node_fp(prog, target, open, memo);
                    m.u64(fp[0]);
                    m.u64(fp[1]);
                }
                let (a, b) = spec_fingerprint(&p.semantics);
                m.u64(a);
                m.u64(b);
            }
        }
        let fp = m.finish();
        if open.is_empty() {
            memo.insert(id, fp);
        }
        fp
    }

    let mut m = Mix::new();
    m.str("prog");
    // The input interface is part of the content: two specs computing the same
    // cone over different declared interfaces pose different synthesis tasks.
    let inputs = spec.free_vars();
    m.u64(inputs.len() as u64);
    for (name, width) in &inputs {
        m.str(name);
        m.u64(*width as u64);
    }
    let root = node_fp(spec, spec.root(), &mut Vec::new(), &mut std::collections::HashMap::new());
    m.u64(root[0]);
    m.u64(root[1]);
    let [a, b] = m.finish();
    (a, b)
}

// ---------------------------------------------------------------------------
// Verified replay
// ---------------------------------------------------------------------------

/// Pseudorandom but deterministic stimulus for replay verification: xorshift64
/// seeded per (round, input), never zero.
fn stimulus(round: u64, input_index: u64) -> u64 {
    let mut s = ((round << 32) | input_index).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..3 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
    }
    s
}

/// Rounds of random stimulus a replayed implementation must match before it is
/// served. Cheap (pure interpretation) relative to even one solver call.
const REPLAY_ROUNDS: u64 = 12;

/// Replays a cached hole assignment: regenerates the sketch for `(template,
/// arch, spec)`, fills the holes, simplifies, and checks the result against the
/// spec by stream interpretation at the cycles synthesis would have checked.
/// Returns `None` — caller falls back to synthesis — if the sketch no longer
/// generates, the assignment no longer fits its domains, or any stimulus round
/// disagrees (a stale or colliding entry).
pub fn replay(
    spec: &Prog,
    template: Template,
    arch: &Architecture,
    config: &MapConfig,
    holes: &BTreeMap<String, BitVec>,
    started: Instant,
) -> Option<MappedDesign> {
    let sketch = generate_sketch(template, arch, spec).ok()?;
    let filled = sketch.fill_holes(holes).ok()?;
    let implementation = filled.simplified().with_name(format!("{}_impl", spec.name()));
    let t = pipeline_depth(spec);
    let inputs = spec.free_vars();
    for round in 0..REPLAY_ROUNDS {
        let mut env = StreamInputs::new();
        for (i, (name, width)) in inputs.iter().enumerate() {
            env.set_constant(name.clone(), BitVec::from_u64(stimulus(round, i as u64), *width));
        }
        for cycle in t..=t + config.bmc_window {
            if spec.interp(&env, cycle).ok()? != implementation.interp(&env, cycle).ok()? {
                return None;
            }
        }
    }
    let resources = count_resources(&implementation);
    let verilog = lr_hdl::emit_verilog(&implementation);
    let elapsed = started.elapsed();
    Some(MappedDesign {
        implementation,
        verilog,
        resources,
        elapsed,
        winning_solver: None,
        iterations: 0,
        from_cache: true,
        stats: SynthesisStats {
            solver_name: "cache".to_string(),
            elapsed,
            from_cache: true,
            ..SynthesisStats::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::{BvOp, ProgBuilder};

    fn key_of(spec: &Prog) -> CacheKey {
        CacheKey::for_mapping(
            spec,
            &Architecture::intel_cyclone10lp(),
            Template::Dsp,
            Duration::from_secs(15),
        )
    }

    #[test]
    fn keys_are_stable_and_roundtrip_through_hex() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Mul, a, bb);
        let spec = b.finish(out);
        let k1 = key_of(&spec);
        let k2 = key_of(&spec.clone());
        assert_eq!(k1, k2);
        let parsed: CacheKey = k1.to_string().parse().unwrap();
        assert_eq!(parsed, k1);
        assert!("xyz".parse::<CacheKey>().is_err());
    }

    #[test]
    fn ac_chains_share_a_fingerprint_and_order_matters_elsewhere() {
        // (a + b) + c vs c + (b + a): same key.
        let build = |perm: [&str; 3], left_assoc: bool| {
            let mut b = ProgBuilder::new("p");
            let xs: Vec<_> = perm.iter().map(|n| b.input(n, 8)).collect();
            let out = if left_assoc {
                let t = b.op2(BvOp::Add, xs[0], xs[1]);
                b.op2(BvOp::Add, t, xs[2])
            } else {
                let t = b.op2(BvOp::Add, xs[1], xs[2]);
                b.op2(BvOp::Add, xs[0], t)
            };
            b.finish(out)
        };
        let p1 = build(["a", "b", "c"], true);
        let p2 = build(["c", "b", "a"], false);
        assert_eq!(spec_fingerprint(&p1), spec_fingerprint(&p2));

        // a - b vs b - a: different keys.
        let sub = |swap: bool| {
            let mut b = ProgBuilder::new("p");
            let a = b.input("a", 8);
            let bb = b.input("b", 8);
            let out = if swap { b.op2(BvOp::Sub, bb, a) } else { b.op2(BvOp::Sub, a, bb) };
            b.finish(out)
        };
        assert_ne!(spec_fingerprint(&sub(false)), spec_fingerprint(&sub(true)));
    }

    #[test]
    fn key_distinguishes_arch_template_and_tier() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Mul, a, bb);
        let spec = b.finish(out);
        let base = key_of(&spec);
        let other_arch = CacheKey::for_mapping(
            &spec,
            &Architecture::lattice_ecp5(),
            Template::Dsp,
            Duration::from_secs(15),
        );
        let other_template = CacheKey::for_mapping(
            &spec,
            &Architecture::intel_cyclone10lp(),
            Template::Multiplication,
            Duration::from_secs(15),
        );
        let other_tier = CacheKey::for_mapping(
            &spec,
            &Architecture::intel_cyclone10lp(),
            Template::Dsp,
            Duration::from_secs(120),
        );
        assert_ne!(base, other_arch);
        assert_ne!(base, other_template);
        assert_ne!(base, other_tier);
        // Same tier, different second → same key.
        let same_tier = CacheKey::for_mapping(
            &spec,
            &Architecture::intel_cyclone10lp(),
            Template::Dsp,
            Duration::from_secs(20),
        );
        assert_eq!(base, same_tier);
    }

    #[test]
    fn register_feedback_hashes_by_shape_not_id() {
        // Two counters built with different id layouts fingerprint equal.
        let counter = |pad: bool| {
            let mut b = ProgBuilder::new("ctr");
            if pad {
                let _ = b.constant_u64(99, 4); // dead node shifts every id
            }
            let r = b.reg_placeholder(8);
            let one = b.constant_u64(1, 8);
            let next = b.op2(BvOp::Add, r, one);
            b.set_reg_data(r, next);
            b.finish(r)
        };
        assert_eq!(spec_fingerprint(&counter(false)), spec_fingerprint(&counter(true)));
    }

    #[test]
    fn timeout_tiers_bucket_the_paper_budgets_apart() {
        assert_eq!(timeout_tier(Duration::from_secs(2)), 0);
        assert_eq!(timeout_tier(Duration::from_secs(15)), 1);
        assert_eq!(timeout_tier(Duration::from_secs(40)), 2);
        assert_eq!(timeout_tier(Duration::from_secs(120)), 3);
        assert_ne!(timeout_tier(Duration::from_secs(20)), timeout_tier(Duration::from_secs(40)));
    }
}
