//! The §5.1 microbenchmark suites.
//!
//! For each DSP-bearing architecture the paper enumerates the designs that should be
//! mappable to a single DSP according to the vendor documentation:
//!
//! * **Xilinx UltraScale+**: all permutations of `((a ± b) * c) ⊙ d` with
//!   `⊙ ∈ {&, |, +, -, ^}`, plus `a * b` and `(a * b) ± c`; 0–3 pipeline stages;
//!   bitwidths 8–18 → 1320 microbenchmarks.
//! * **Lattice ECP5**: `(a * b) ⊙ c` with `⊙ ∈ {&, |, ^, +, -}` plus `a * b`;
//!   0–2 stages; widths 8–18 → 396 microbenchmarks.
//! * **Intel Cyclone 10 LP**: `a * b`; 0–2 stages; widths 8–18 → 66 microbenchmarks.

use lr_arch::ArchName;
use lr_ir::{BvOp, NodeId, Prog, ProgBuilder};

/// The binary operator applied after the multiply (`⊙` in the paper's grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostOp {
    /// No post-operation (`a * b` or `(a ± b) * c`).
    None,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
}

impl PostOp {
    fn apply(self, b: &mut ProgBuilder, lhs: NodeId, rhs: NodeId) -> NodeId {
        match self {
            PostOp::None => lhs,
            PostOp::And => b.op2(BvOp::And, lhs, rhs),
            PostOp::Or => b.op2(BvOp::Or, lhs, rhs),
            PostOp::Xor => b.op2(BvOp::Xor, lhs, rhs),
            PostOp::Add => b.op2(BvOp::Add, lhs, rhs),
            PostOp::Sub => b.op2(BvOp::Sub, lhs, rhs),
        }
    }

    fn name(self) -> &'static str {
        match self {
            PostOp::None => "",
            PostOp::And => "and",
            PostOp::Or => "or",
            PostOp::Xor => "xor",
            PostOp::Add => "add",
            PostOp::Sub => "sub",
        }
    }
}

/// The overall shape of a microbenchmark design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignShape {
    /// `a * b`
    Mul,
    /// `(a * b) ⊙ c`
    MulThen(PostOp),
    /// `(a + b) * c` then optionally `⊙ d`
    PreAddMulThen(PostOp),
    /// `(a - b) * c` then optionally `⊙ d`
    PreSubMulThen(PostOp),
}

/// One microbenchmark: a design shape at a bitwidth with a number of pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Microbenchmark {
    /// A stable, human-readable name (used in reports).
    pub name: String,
    /// The design shape.
    pub shape: DesignShape,
    /// Operand bitwidth.
    pub width: u32,
    /// Number of pipeline stages (registers after the combinational expression).
    pub stages: u32,
    /// Whether the source design declares its operands `$signed`. At equal operand
    /// and result widths the low result bits of signed and unsigned arithmetic
    /// coincide, so the behavioural ℒlr program is the same; the flag matters to the
    /// syntactic baseline mappers (whose pattern rules distinguish the two) and keeps
    /// the suite sizes aligned with the paper's counts.
    pub signed: bool,
    /// The architecture suite this benchmark belongs to.
    pub architecture: ArchName,
}

impl Microbenchmark {
    /// Builds the behavioral ℒlr design for this microbenchmark.
    pub fn build(&self) -> Prog {
        let mut b = ProgBuilder::new(&self.name);
        let w = self.width;
        let root = match self.shape {
            DesignShape::Mul => {
                let a = b.input("a", w);
                let x = b.input("b", w);
                b.op2(BvOp::Mul, a, x)
            }
            DesignShape::MulThen(op) => {
                let a = b.input("a", w);
                let x = b.input("b", w);
                let c = b.input("c", w);
                let prod = b.op2(BvOp::Mul, a, x);
                op.apply(&mut b, prod, c)
            }
            DesignShape::PreAddMulThen(op) | DesignShape::PreSubMulThen(op) => {
                let a = b.input("a", w);
                let x = b.input("b", w);
                let c = b.input("c", w);
                let pre = if matches!(self.shape, DesignShape::PreAddMulThen(_)) {
                    b.op2(BvOp::Add, a, x)
                } else {
                    b.op2(BvOp::Sub, a, x)
                };
                let prod = b.op2(BvOp::Mul, pre, c);
                if op == PostOp::None {
                    prod
                } else {
                    let d = b.input("d", w);
                    op.apply(&mut b, prod, d)
                }
            }
        };
        let mut out = root;
        for _ in 0..self.stages {
            out = b.reg(out, w);
        }
        b.finish(out)
    }
}

/// The bitwidths the paper sweeps (8–18 bits).
pub const FULL_WIDTHS: std::ops::RangeInclusive<u32> = 8..=18;

/// The suite for one architecture, restricted to the given widths (pass
/// [`FULL_WIDTHS`] for the paper-scale suite, or a narrower range for smoke runs).
pub fn suite_for(arch: ArchName, widths: impl Iterator<Item = u32> + Clone) -> Vec<Microbenchmark> {
    let mut out = Vec::new();
    let post_ops = [PostOp::And, PostOp::Or, PostOp::Xor, PostOp::Add, PostOp::Sub];
    match arch {
        ArchName::XilinxUltraScalePlus => {
            // ((a ± b) * c) ⊙ d for ⊙ in {&, |, ^, +, -}, plus (a ± b) * c,
            // plus a * b and (a * b) ± c; 0-3 stages.
            let mut shapes = Vec::new();
            for op in post_ops.iter().copied().chain([PostOp::None]) {
                shapes.push(DesignShape::PreAddMulThen(op));
                shapes.push(DesignShape::PreSubMulThen(op));
            }
            shapes.push(DesignShape::Mul);
            shapes.push(DesignShape::MulThen(PostOp::Add));
            shapes.push(DesignShape::MulThen(PostOp::Sub));
            for shape in shapes {
                for stages in 0..=3 {
                    for width in widths.clone() {
                        for signed in [false, true] {
                            out.push(make(arch, shape, width, stages, signed));
                        }
                    }
                }
            }
        }
        ArchName::LatticeEcp5 => {
            // (a * b) ⊙ c for ⊙ in {&, |, ^, +, -}, plus a * b; 0-2 stages.
            let mut shapes: Vec<DesignShape> =
                post_ops.iter().map(|&op| DesignShape::MulThen(op)).collect();
            shapes.push(DesignShape::Mul);
            for shape in shapes {
                for stages in 0..=2 {
                    for width in widths.clone() {
                        for signed in [false, true] {
                            out.push(make(arch, shape, width, stages, signed));
                        }
                    }
                }
            }
        }
        ArchName::IntelCyclone10Lp => {
            for stages in 0..=2 {
                for width in widths.clone() {
                    for signed in [false, true] {
                        out.push(make(arch, DesignShape::Mul, width, stages, signed));
                    }
                }
            }
        }
        ArchName::Sofa => {}
    }
    out
}

fn make(
    arch: ArchName,
    shape: DesignShape,
    width: u32,
    stages: u32,
    signed: bool,
) -> Microbenchmark {
    let shape_name = match shape {
        DesignShape::Mul => "mul".to_string(),
        DesignShape::MulThen(op) => format!("mul_{}", op.name()),
        DesignShape::PreAddMulThen(PostOp::None) => "preadd_mul".to_string(),
        DesignShape::PreSubMulThen(PostOp::None) => "presub_mul".to_string(),
        DesignShape::PreAddMulThen(op) => format!("preadd_mul_{}", op.name()),
        DesignShape::PreSubMulThen(op) => format!("presub_mul_{}", op.name()),
    };
    let sign = if signed { "_signed" } else { "" };
    Microbenchmark {
        name: format!("{shape_name}_w{width}_s{stages}{sign}"),
        shape,
        width,
        stages,
        signed,
        architecture: arch,
    }
}

/// The full paper-scale suite for one architecture.
pub fn full_suite(arch: ArchName) -> Vec<Microbenchmark> {
    suite_for(arch, FULL_WIDTHS)
}

/// A scaled-down suite (one narrow width, all shapes and stages) used by the smoke
/// experiments and the Criterion benchmarks.
pub fn smoke_suite(arch: ArchName) -> Vec<Microbenchmark> {
    suite_for(arch, [8u32].into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_bv::BitVec;
    use lr_ir::StreamInputs;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(full_suite(ArchName::XilinxUltraScalePlus).len(), 1320);
        assert_eq!(full_suite(ArchName::LatticeEcp5).len(), 396);
        assert_eq!(full_suite(ArchName::IntelCyclone10Lp).len(), 66);
        assert!(full_suite(ArchName::Sofa).is_empty());
    }

    #[test]
    fn benchmark_names_are_unique() {
        for arch in
            [ArchName::XilinxUltraScalePlus, ArchName::LatticeEcp5, ArchName::IntelCyclone10Lp]
        {
            let suite = full_suite(arch);
            let names: std::collections::HashSet<_> = suite.iter().map(|m| &m.name).collect();
            assert_eq!(names.len(), suite.len(), "{arch}");
        }
    }

    #[test]
    fn built_designs_behave_as_specified() {
        let bench = make(
            ArchName::XilinxUltraScalePlus,
            DesignShape::PreAddMulThen(PostOp::And),
            8,
            2,
            false,
        );
        let prog = bench.build();
        assert!(prog.well_formed().is_ok());
        assert!(prog.is_behavioral());
        assert_eq!(crate::pipeline_depth(&prog), 2);
        let env = StreamInputs::from_constants(
            [("a", 3u64), ("b", 5), ("c", 7), ("d", 0x3F)]
                .into_iter()
                .map(|(n, v)| (n.to_string(), BitVec::from_u64(v, 8))),
        );
        assert_eq!(prog.interp(&env, 2).unwrap(), BitVec::from_u64(((3 + 5) * 7) & 0x3F, 8));

        let bench = make(ArchName::IntelCyclone10Lp, DesignShape::Mul, 12, 0, true);
        let prog = bench.build();
        let env = StreamInputs::from_constants(
            [("a", 100u64), ("b", 30)]
                .into_iter()
                .map(|(n, v)| (n.to_string(), BitVec::from_u64(v, 12))),
        );
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(3000, 12));
    }

    #[test]
    fn smoke_suite_is_a_subset_shapewise() {
        let smoke = smoke_suite(ArchName::LatticeEcp5);
        assert_eq!(smoke.len(), 36); // 6 shapes x 3 stage counts x 1 width x 2 signedness
        assert!(smoke.iter().all(|m| m.width == 8));
    }
}
