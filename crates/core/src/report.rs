//! Aggregation helpers used by the experiment binaries: outcome tallies, timing
//! summaries (median / min / max, as in Figure 6 bottom), and runtime histograms
//! (Figure 7).

use std::time::Duration;

/// The classification the completeness experiment uses for one run of one tool on
/// one microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunClass {
    /// Mapped to a single DSP.
    Success,
    /// The tool returned a mapping, but it uses more than a single DSP.
    Fail,
    /// Lakeroad proved no single-DSP mapping exists.
    Unsat,
    /// The tool timed out.
    Timeout,
}

/// A tally of run classifications for one (architecture, tool) pair — one bar of
/// Figure 6 (top).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tally {
    /// Successful single-DSP mappings.
    pub success: usize,
    /// Mappings that used more than one DSP's worth of resources.
    pub fail: usize,
    /// UNSAT verdicts.
    pub unsat: usize,
    /// Timeouts.
    pub timeout: usize,
}

impl Tally {
    /// Records one run.
    pub fn record(&mut self, class: RunClass) {
        match class {
            RunClass::Success => self.success += 1,
            RunClass::Fail => self.fail += 1,
            RunClass::Unsat => self.unsat += 1,
            RunClass::Timeout => self.timeout += 1,
        }
    }

    /// Total number of runs recorded.
    pub fn total(&self) -> usize {
        self.success + self.fail + self.unsat + self.timeout
    }

    /// Fraction of runs that mapped to a single DSP.
    pub fn success_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.success as f64 / self.total() as f64
        }
    }
}

/// Timing summary (median / min / max), as reported in Figure 6 (bottom).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingSummary {
    /// Median run time in seconds.
    pub median_s: f64,
    /// Minimum run time in seconds.
    pub min_s: f64,
    /// Maximum run time in seconds.
    pub max_s: f64,
}

/// Summarizes a set of durations. Returns `None` for an empty set.
pub fn summarize_timing(durations: &[Duration]) -> Option<TimingSummary> {
    if durations.is_empty() {
        return None;
    }
    let mut secs: Vec<f64> = durations.iter().map(Duration::as_secs_f64).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if secs.len() % 2 == 1 {
        secs[secs.len() / 2]
    } else {
        (secs[secs.len() / 2 - 1] + secs[secs.len() / 2]) / 2.0
    };
    Some(TimingSummary { median_s: median, min_s: secs[0], max_s: *secs.last().unwrap() })
}

/// Builds the Figure 7 runtime histogram over the shared log-bucketed
/// [`lr_trace::Histogram`] (millisecond samples). Exponential buckets replace
/// the old fixed-width binning: synthesis runtimes span four orders of
/// magnitude, and the shared type merges with daemon/scheduler latency
/// histograms for free.
pub fn runtime_histogram(durations: &[Duration]) -> lr_trace::Histogram {
    let mut h = lr_trace::Histogram::new();
    for d in durations {
        h.record(u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    }
    h
}

/// Renders an ASCII bar for a proportion (used for the Figure 6 top bars).
pub fn proportion_bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_counts_and_rates() {
        let mut t = Tally::default();
        t.record(RunClass::Success);
        t.record(RunClass::Success);
        t.record(RunClass::Fail);
        t.record(RunClass::Unsat);
        assert_eq!(t.total(), 4);
        assert!((t.success_rate() - 0.5).abs() < 1e-9);
        assert_eq!(Tally::default().success_rate(), 0.0);
    }

    #[test]
    fn timing_summary_median() {
        let durations: Vec<Duration> =
            [1.0f64, 3.0, 2.0].iter().map(|s| Duration::from_secs_f64(*s)).collect();
        let s = summarize_timing(&durations).unwrap();
        assert_eq!(s.median_s, 2.0);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.max_s, 3.0);
        let even: Vec<Duration> =
            [1.0f64, 2.0, 3.0, 4.0].iter().map(|s| Duration::from_secs_f64(*s)).collect();
        assert_eq!(summarize_timing(&even).unwrap().median_s, 2.5);
        assert!(summarize_timing(&[]).is_none());
    }

    #[test]
    fn runtime_histogram_buckets_millisecond_samples() {
        let durations: Vec<Duration> =
            [0.1f64, 0.2, 1.5, 9.0].iter().map(|s| Duration::from_secs_f64(*s)).collect();
        let h = runtime_histogram(&durations);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100 + 200 + 1500 + 9000);
        // 100 ms and 200 ms land in different power-of-two buckets.
        assert_ne!(lr_trace::Histogram::bucket_index(100), lr_trace::Histogram::bucket_index(200));
        let rendered = h.render("ms");
        assert!(rendered.contains('#'));
    }

    #[test]
    fn proportion_bars_have_fixed_width() {
        assert_eq!(proportion_bar(0.0, 10).chars().count(), 10);
        assert_eq!(proportion_bar(1.0, 10).chars().count(), 10);
        assert_eq!(proportion_bar(0.5, 10).chars().count(), 10);
    }
}
