//! Aggregation helpers used by the experiment binaries: outcome tallies, timing
//! summaries (median / min / max, as in Figure 6 bottom), and runtime histograms
//! (Figure 7).

use std::time::Duration;

/// The classification the completeness experiment uses for one run of one tool on
/// one microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunClass {
    /// Mapped to a single DSP.
    Success,
    /// The tool returned a mapping, but it uses more than a single DSP.
    Fail,
    /// Lakeroad proved no single-DSP mapping exists.
    Unsat,
    /// The tool timed out.
    Timeout,
}

/// A tally of run classifications for one (architecture, tool) pair — one bar of
/// Figure 6 (top).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tally {
    /// Successful single-DSP mappings.
    pub success: usize,
    /// Mappings that used more than one DSP's worth of resources.
    pub fail: usize,
    /// UNSAT verdicts.
    pub unsat: usize,
    /// Timeouts.
    pub timeout: usize,
}

impl Tally {
    /// Records one run.
    pub fn record(&mut self, class: RunClass) {
        match class {
            RunClass::Success => self.success += 1,
            RunClass::Fail => self.fail += 1,
            RunClass::Unsat => self.unsat += 1,
            RunClass::Timeout => self.timeout += 1,
        }
    }

    /// Total number of runs recorded.
    pub fn total(&self) -> usize {
        self.success + self.fail + self.unsat + self.timeout
    }

    /// Fraction of runs that mapped to a single DSP.
    pub fn success_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.success as f64 / self.total() as f64
        }
    }
}

/// Timing summary (median / min / max), as reported in Figure 6 (bottom).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingSummary {
    /// Median run time in seconds.
    pub median_s: f64,
    /// Minimum run time in seconds.
    pub min_s: f64,
    /// Maximum run time in seconds.
    pub max_s: f64,
}

/// Summarizes a set of durations. Returns `None` for an empty set.
pub fn summarize_timing(durations: &[Duration]) -> Option<TimingSummary> {
    if durations.is_empty() {
        return None;
    }
    let mut secs: Vec<f64> = durations.iter().map(Duration::as_secs_f64).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if secs.len() % 2 == 1 {
        secs[secs.len() / 2]
    } else {
        (secs[secs.len() / 2 - 1] + secs[secs.len() / 2]) / 2.0
    };
    Some(TimingSummary { median_s: median, min_s: secs[0], max_s: *secs.last().unwrap() })
}

/// A histogram over run times (Figure 7): fixed-width buckets in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket width in seconds.
    pub bucket_width_s: f64,
    /// Counts per bucket (bucket `i` covers `[i*w, (i+1)*w)`).
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with the given bucket width covering all the samples.
    pub fn build(durations: &[Duration], bucket_width_s: f64, max_s: f64) -> Histogram {
        let buckets = (max_s / bucket_width_s).ceil().max(1.0) as usize;
        let mut counts = vec![0usize; buckets];
        for d in durations {
            let idx = ((d.as_secs_f64() / bucket_width_s) as usize).min(buckets - 1);
            counts[idx] += 1;
        }
        Histogram { bucket_width_s, counts }
    }

    /// Renders the histogram as rows of `lo..hi: count  ###`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (i, &count) in self.counts.iter().enumerate() {
            let lo = i as f64 * self.bucket_width_s;
            let hi = lo + self.bucket_width_s;
            let bar = "#".repeat((count * 40).div_ceil(max).min(40));
            out.push_str(&format!("{lo:6.1}-{hi:6.1} s | {count:5} {bar}\n"));
        }
        out
    }
}

/// Renders an ASCII bar for a proportion (used for the Figure 6 top bars).
pub fn proportion_bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_counts_and_rates() {
        let mut t = Tally::default();
        t.record(RunClass::Success);
        t.record(RunClass::Success);
        t.record(RunClass::Fail);
        t.record(RunClass::Unsat);
        assert_eq!(t.total(), 4);
        assert!((t.success_rate() - 0.5).abs() < 1e-9);
        assert_eq!(Tally::default().success_rate(), 0.0);
    }

    #[test]
    fn timing_summary_median() {
        let durations: Vec<Duration> =
            [1.0f64, 3.0, 2.0].iter().map(|s| Duration::from_secs_f64(*s)).collect();
        let s = summarize_timing(&durations).unwrap();
        assert_eq!(s.median_s, 2.0);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.max_s, 3.0);
        let even: Vec<Duration> =
            [1.0f64, 2.0, 3.0, 4.0].iter().map(|s| Duration::from_secs_f64(*s)).collect();
        assert_eq!(summarize_timing(&even).unwrap().median_s, 2.5);
        assert!(summarize_timing(&[]).is_none());
    }

    #[test]
    fn histogram_buckets_and_rendering() {
        let durations: Vec<Duration> =
            [0.1f64, 0.2, 1.5, 9.0].iter().map(|s| Duration::from_secs_f64(*s)).collect();
        let h = Histogram::build(&durations, 1.0, 4.0);
        assert_eq!(h.counts.len(), 4);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[3], 1); // clamped into the last bucket
        let rendered = h.render();
        assert!(rendered.lines().count() == 4);
        assert!(rendered.contains('#'));
    }

    #[test]
    fn proportion_bars_have_fixed_width() {
        assert_eq!(proportion_bar(0.0, 10).chars().count(), 10);
        assert_eq!(proportion_bar(1.0, 10).chars().count(), 10);
        assert_eq!(proportion_bar(0.5, 10).chars().count(), 10);
    }
}
