//! # lakeroad: FPGA technology mapping using sketch-guided program synthesis
//!
//! This is the core crate of the reproduction: it glues together the behavioral
//! frontend (`lr-hdl`), the architecture descriptions and primitive semantics
//! (`lr-arch`), the sketch templates (`lr-sketch`), and the synthesis engine
//! (`lr-synth`) into the tool the paper describes — the equivalent of
//!
//! ```text
//! $ lakeroad --template dsp --arch-desc xilinx-ultrascale-plus.yml add_mul_and.v
//! ```
//!
//! The main entry points are [`map_design`] (map an ℒbeh design) and
//! [`map_verilog`] (map a behavioral mini-Verilog module). The
//! [`suite`] module regenerates the paper's microbenchmark suites (§5.1), and
//! [`report`] provides the aggregation used by the experiment binaries.
//!
//! ```no_run
//! use lakeroad::{map_verilog, MapConfig, Template};
//! use lr_arch::Architecture;
//!
//! let verilog = r#"
//! module mul8(input clk, input [7:0] a, b, output [7:0] out);
//!   assign out = a * b;
//! endmodule
//! "#;
//! let arch = Architecture::xilinx_ultrascale_plus();
//! let outcome = map_verilog(verilog, Template::Dsp, &arch, &MapConfig::default()).unwrap();
//! assert!(outcome.is_success());
//! ```

pub mod cache;
pub mod report;
pub mod source;
pub mod suite;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lr_arch::Architecture;
use lr_ir::{Node, Prog};
use lr_synth::portfolio::synthesize_portfolio_with;
use lr_synth::{SolverConfig, SynthesisConfig, SynthesisError, SynthesisOutcome, SynthesisTask};

pub use cache::{CacheKey, CachedOutcome, MapCache};
pub use lr_sketch::{generate_sketch, SketchError, Template};
pub use lr_synth::SynthesisStats;
pub use source::DesignSource;

/// Configuration for one mapping run.
#[derive(Clone)]
pub struct MapConfig {
    /// Wall-clock budget for synthesis (the paper uses 120 s / 40 s / 20 s per
    /// architecture).
    pub timeout: Duration,
    /// Extra clock cycles of bounded model checking beyond the design's pipeline
    /// depth (the `c` of 𝑓*lr).
    pub bmc_window: u32,
    /// Solver configurations to race; defaults to the four-member portfolio.
    pub solvers: Vec<SolverConfig>,
    /// Maximum CEGIS iterations per solver.
    pub max_iterations: usize,
    /// Reuse solver state across CEGIS iterations (default on; see
    /// `lr_synth::cegis`). Turning this off restores the from-scratch loop, which
    /// the differential tests and the `exp_cegis` benchmark use as a baseline.
    pub incremental: bool,
    /// Use equality saturation (`lr_egraph`, default on): canonicalize the spec
    /// with [`lr_ir::Prog::saturated`] before sketch generation, and pre-fold
    /// CEGIS verification disequalities that one-shot rewriting cannot decide.
    /// Turning this off restores the pool-rewriting-only pipeline, kept measurable
    /// for the `exp_egraph` ablation.
    pub egraph: bool,
    /// Content-addressed synthesis cache (see [`cache`]): consulted before
    /// synthesis under the canonical spec's [`CacheKey`], fed after. `None`
    /// (the default) synthesizes every request from scratch; the `lr_serve`
    /// batch engine installs its sharded [`MapCache`] here.
    pub cache: Option<Arc<dyn MapCache>>,
    /// The budget used for the cache key's timeout tier; defaults to
    /// [`MapConfig::timeout`]. Callers that shrink `timeout` *dynamically* —
    /// the auto-template loop handing each attempt only the remaining budget,
    /// the batch scheduler clamping a job to its deadline — must pin this to
    /// the originally requested budget, or the same job would hash to
    /// different tiers depending on wall-clock accidents and warm caches would
    /// miss.
    pub cache_budget: Option<Duration>,
    /// External cancellation flag, threaded through to the synthesis layer as a
    /// SAT-solver interrupt: when it becomes true, in-flight solver checks
    /// return promptly and the mapping reports a timeout verdict. `None` (the
    /// default) means the run is only bounded by `timeout`.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl std::fmt::Debug for MapConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapConfig")
            .field("timeout", &self.timeout)
            .field("bmc_window", &self.bmc_window)
            .field("solvers", &self.solvers)
            .field("max_iterations", &self.max_iterations)
            .field("incremental", &self.incremental)
            .field("egraph", &self.egraph)
            .field("cache", &self.cache.as_ref().map(|_| "<MapCache>"))
            .field("cache_budget", &self.cache_budget)
            .field("cancel", &self.cancel.as_ref().map(|c| c.load(Ordering::Relaxed)))
            .finish()
    }
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            timeout: Duration::from_secs(120),
            bmc_window: 2,
            solvers: SolverConfig::portfolio(),
            max_iterations: 64,
            incremental: true,
            egraph: true,
            cache: None,
            cache_budget: None,
            cancel: None,
        }
    }
}

impl MapConfig {
    /// A configuration using a single default solver (useful for deterministic tests
    /// and the ablation benchmarks).
    pub fn single_solver() -> Self {
        MapConfig { solvers: vec![SolverConfig::default()], ..Default::default() }
    }

    /// Sets the synthesis timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Installs a synthesis cache (see [`cache`]).
    pub fn with_cache(mut self, cache: Arc<dyn MapCache>) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// Resource usage of a mapped (or baseline-mapped) design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resources {
    /// Number of DSP blocks.
    pub dsps: usize,
    /// Number of logic elements (LUTs / muxes / carry slices).
    pub logic_elements: usize,
    /// Number of register bits.
    pub registers: usize,
}

impl Resources {
    /// Whether the design fits in exactly one DSP and nothing else — the paper's
    /// success criterion for the completeness experiment.
    pub fn is_single_dsp(&self) -> bool {
        self.dsps == 1 && self.logic_elements == 0 && self.registers == 0
    }
}

/// Counts the resources used by a structural ℒlr program (after simplification):
/// primitive instances by interface, plus top-level register bits.
pub fn count_resources(prog: &Prog) -> Resources {
    let mut r = Resources::default();
    for (_, node) in prog.nodes() {
        match node {
            Node::Prim(p) => {
                if p.interface == "DSP" {
                    r.dsps += 1;
                } else {
                    r.logic_elements += 1;
                }
            }
            Node::Reg { init, .. } => r.registers += init.width() as usize,
            _ => {}
        }
    }
    r
}

/// A successful mapping.
#[derive(Debug, Clone)]
pub struct MappedDesign {
    /// The structural implementation (holes filled, selection logic folded).
    pub implementation: Prog,
    /// Structural Verilog for the implementation.
    pub verilog: String,
    /// Resources used by the implementation.
    pub resources: Resources,
    /// Total synthesis wall-clock time — or, for cache-served results, the
    /// lookup-plus-replay time (near zero).
    pub elapsed: Duration,
    /// Which portfolio member produced the verdict (`None` for cache hits).
    pub winning_solver: Option<String>,
    /// CEGIS iterations of the winning run (0 for cache hits).
    pub iterations: usize,
    /// Whether this mapping was replayed from the synthesis cache rather than
    /// synthesized. Cached results carry near-zero [`MappedDesign::elapsed`], so
    /// reports must not average them in with solver latencies.
    pub from_cache: bool,
    /// Full statistics of the winning synthesis run (a `"cache"`-labelled stub
    /// with [`SynthesisStats::from_cache`] set for replayed hits).
    pub stats: SynthesisStats,
}

/// The verdict of a mapping run.
#[derive(Debug, Clone)]
pub enum MapOutcome {
    /// Mapping succeeded.
    Success(Box<MappedDesign>),
    /// The solver proved no configuration of the sketch implements the design.
    Unsat {
        /// Synthesis wall-clock time (near zero for cache-served verdicts).
        elapsed: Duration,
        /// Which portfolio member produced the verdict (`None` for cache hits).
        winning_solver: Option<String>,
        /// Whether the verdict was served from the synthesis cache.
        from_cache: bool,
        /// Statistics of the run that produced the verdict (a `"cache"`-labelled
        /// stub for cache-served verdicts).
        stats: Box<SynthesisStats>,
    },
    /// The time/iteration budget was exhausted.
    Timeout {
        /// Synthesis wall-clock time.
        elapsed: Duration,
        /// Partial statistics of the work performed before the budget ran out
        /// (accumulated across every posed attempt for the auto-template loop).
        stats: Box<SynthesisStats>,
    },
}

impl MapOutcome {
    /// Whether mapping succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, MapOutcome::Success(_))
    }

    /// Whether the verdict was UNSAT.
    pub fn is_unsat(&self) -> bool {
        matches!(self, MapOutcome::Unsat { .. })
    }

    /// Whether the run timed out.
    pub fn is_timeout(&self) -> bool {
        matches!(self, MapOutcome::Timeout { .. })
    }

    /// The successful mapping, if any.
    pub fn success(self) -> Option<MappedDesign> {
        match self {
            MapOutcome::Success(m) => Some(*m),
            _ => None,
        }
    }

    /// The synthesis wall-clock time, regardless of verdict. For cache-served
    /// results this is the lookup-plus-replay time, not the original solver
    /// time — check [`MapOutcome::served_from_cache`] before aggregating.
    pub fn elapsed(&self) -> Duration {
        match self {
            MapOutcome::Success(m) => m.elapsed,
            MapOutcome::Unsat { elapsed, .. } | MapOutcome::Timeout { elapsed, .. } => *elapsed,
        }
    }

    /// The synthesis statistics behind the verdict, whatever it was: the winning
    /// run's for success, the proving run's for UNSAT, and the accumulated
    /// partial work for timeouts. Cache-served verdicts carry a
    /// `"cache"`-labelled stub with [`SynthesisStats::from_cache`] set.
    pub fn stats(&self) -> &SynthesisStats {
        match self {
            MapOutcome::Success(m) => &m.stats,
            MapOutcome::Unsat { stats, .. } | MapOutcome::Timeout { stats, .. } => stats,
        }
    }

    /// Whether the verdict was replayed from the synthesis cache rather than
    /// synthesized (always false for timeouts — they are never cached).
    pub fn served_from_cache(&self) -> bool {
        match self {
            MapOutcome::Success(m) => m.from_cache,
            MapOutcome::Unsat { from_cache, .. } => *from_cache,
            MapOutcome::Timeout { .. } => false,
        }
    }
}

/// Errors that prevent a mapping run from being posed at all.
#[derive(Debug, Clone)]
pub enum MapError {
    /// Sketch generation failed (missing interface, unsupported shape).
    Sketch(SketchError),
    /// The synthesis task was malformed.
    Synthesis(SynthesisError),
    /// The behavioral frontend failed to parse/elaborate the design.
    Frontend(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Sketch(e) => write!(f, "sketch generation failed: {e}"),
            MapError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            MapError::Frontend(e) => write!(f, "frontend failed: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<SketchError> for MapError {
    fn from(e: SketchError) -> Self {
        MapError::Sketch(e)
    }
}

impl From<SynthesisError> for MapError {
    fn from(e: SynthesisError) -> Self {
        MapError::Synthesis(e)
    }
}

/// The number of pipeline stages of a behavioral design: the maximum number of
/// registers on any path from an input to the root. This is the clock cycle `t` at
/// which the synthesized implementation must match the design (𝑓lr's `t`).
pub fn pipeline_depth(prog: &Prog) -> u32 {
    fn depth(
        prog: &Prog,
        id: lr_ir::NodeId,
        memo: &mut std::collections::HashMap<lr_ir::NodeId, u32>,
    ) -> u32 {
        if let Some(&d) = memo.get(&id) {
            return d;
        }
        // Break feedback cycles (which must pass through registers) conservatively.
        memo.insert(id, 0);
        let d = match prog.node(id).expect("node exists") {
            Node::Reg { data, .. } => 1 + depth(prog, *data, memo),
            Node::Op(_, args) => args.iter().map(|&a| depth(prog, a, memo)).max().unwrap_or(0),
            Node::Prim(p) => p.bindings.values().map(|&a| depth(prog, a, memo)).max().unwrap_or(0),
            _ => 0,
        };
        memo.insert(id, d);
        d
    }
    let mut memo = std::collections::HashMap::new();
    depth(prog, prog.root(), &mut memo)
}

/// Maps a behavioral ℒlr design onto `arch` using `template`.
///
/// # Errors
/// Returns [`MapError`] if the sketch cannot be generated or the synthesis task is
/// malformed; solver-level failures (UNSAT, timeout) are reported in the
/// [`MapOutcome`] instead.
pub fn map_design(
    spec: &Prog,
    template: Template,
    arch: &Architecture,
    config: &MapConfig,
) -> Result<MapOutcome, MapError> {
    // Canonicalize the spec by equality saturation before specializing the sketch:
    // disguised forms (mirrored subtractions, negate-path products, constant
    // chains) reach the synthesis engine in one normal form, and sketch shape
    // checks (widths, input counts) see the real structure. Saturation preserves
    // the input interface, so the sketch still binds the same free variables.
    let spec = if config.egraph { spec.saturated() } else { spec.clone() };
    map_prepared_design(&spec, template, arch, config)
}

/// [`map_design`] for a spec that is already canonical (or deliberately raw, with
/// `config.egraph` off) — the auto-template loop saturates once and reuses the
/// result across every attempt instead of re-saturating per template.
fn map_prepared_design(
    spec: &Prog,
    template: Template,
    arch: &Architecture,
    config: &MapConfig,
) -> Result<MapOutcome, MapError> {
    let mut map_span = lr_trace::span("map");
    map_span.attr("template", template as u64);
    // Cache front door: address the job by its canonical content and replay a
    // stored verdict when one verifies. A hit that fails verification (stale or
    // colliding entry) is dropped and the request falls through to synthesis.
    let started = Instant::now();
    let key = config.cache.as_ref().map(|_| {
        CacheKey::for_mapping(spec, arch, template, config.cache_budget.unwrap_or(config.timeout))
    });
    if let (Some(cache), Some(key)) = (config.cache.as_deref(), key) {
        let hit = {
            let _sp = lr_trace::span("cache-lookup");
            cache.lookup(&key)
        };
        lr_trace::counter_add(if hit.is_some() { "cache.hit" } else { "cache.miss" }, 1);
        match hit {
            Some(CachedOutcome::Success { holes }) => {
                let mut sp = lr_trace::span("cache-replay");
                let replayed = cache::replay(spec, template, arch, config, &holes, started);
                sp.attr("verified", u64::from(replayed.is_some()));
                match replayed {
                    Some(mapped) => {
                        lr_trace::counter_add("cache.replay.verified", 1);
                        return Ok(MapOutcome::Success(Box::new(mapped)));
                    }
                    None => {
                        lr_trace::counter_add("cache.replay.stale", 1);
                        cache.invalidate(&key);
                    }
                }
            }
            Some(CachedOutcome::Unsat) => {
                let elapsed = started.elapsed();
                return Ok(MapOutcome::Unsat {
                    elapsed,
                    winning_solver: None,
                    from_cache: true,
                    stats: Box::new(SynthesisStats {
                        solver_name: "cache".to_string(),
                        elapsed,
                        from_cache: true,
                        ..SynthesisStats::default()
                    }),
                });
            }
            None => {}
        }
    }

    let sketch = generate_sketch(template, arch, spec)?;
    let t = pipeline_depth(spec);
    let task = SynthesisTask::over_window(spec, &sketch, t, config.bmc_window);
    let synth_config = SynthesisConfig {
        solver: SolverConfig::default(),
        max_iterations: config.max_iterations,
        timeout: Some(config.timeout),
        incremental: config.incremental,
        egraph: config.egraph,
        cancel: config.cancel.clone(),
        ..Default::default()
    };
    let result = synthesize_portfolio_with(&task, &synth_config, &config.solvers)?;
    let winner = result.winner.clone();
    Ok(match result.outcome {
        SynthesisOutcome::Success(s) => {
            if let (Some(cache), Some(key)) = (config.cache.as_deref(), key) {
                cache.store(key, CachedOutcome::Success { holes: s.hole_assignment.clone() });
            }
            let implementation =
                s.implementation.simplified().with_name(format!("{}_impl", spec.name()));
            let resources = count_resources(&implementation);
            let verilog = lr_hdl::emit_verilog(&implementation);
            MapOutcome::Success(Box::new(MappedDesign {
                implementation,
                verilog,
                resources,
                elapsed: s.stats.elapsed,
                winning_solver: winner,
                iterations: s.stats.iterations,
                from_cache: false,
                stats: s.stats,
            }))
        }
        SynthesisOutcome::Unsat { stats } => {
            if let (Some(cache), Some(key)) = (config.cache.as_deref(), key) {
                cache.store(key, CachedOutcome::Unsat);
            }
            MapOutcome::Unsat {
                elapsed: stats.elapsed,
                winning_solver: winner,
                from_cache: false,
                stats: Box::new(stats),
            }
        }
        SynthesisOutcome::Timeout { stats } => {
            MapOutcome::Timeout { elapsed: stats.elapsed, stats: Box::new(stats) }
        }
    })
}

/// Maps a design without naming a template: tries the templates in the order the
/// rule-driven sketch guidance ranks them (see `lr_sketch::guidance` — with the
/// e-graph on, the ranking inspects the spec's saturated form for
/// multiplier/carry/comparison evidence; with it off, the raw program is scanned
/// syntactically), returning the first successful mapping. The spec is
/// canonicalized once and shared by every attempt, and `config.timeout` is a
/// budget for the *whole* loop — each attempt gets only what remains.
///
/// Templates the architecture cannot instantiate are skipped. If no template
/// succeeds, UNSAT is reported only when **every** posed attempt was UNSAT — "no
/// ranked sketch implements this design" is a definitive claim; any attempt that
/// timed out (or was cut off by the shared budget) makes the aggregate a timeout.
///
/// # Errors
/// Returns [`MapError`] only if *every* ranked template fails to even pose a task
/// (the last such error is reported).
pub fn map_design_auto(
    spec: &Prog,
    arch: &Architecture,
    config: &MapConfig,
) -> Result<MapOutcome, MapError> {
    let start = std::time::Instant::now();
    // Canonicalize once (respecting the e-graph switch); every attempt below uses
    // the prepared spec directly, and the ranking scans the same program.
    let spec = if config.egraph { spec.saturated() } else { spec.clone() };
    let ranked = lr_sketch::rank_for_evidence(&lr_ir::StructuralEvidence::scan(&spec), arch);
    let mut unsat: Option<MapOutcome> = None;
    let mut timed_out = false;
    let mut last_error: Option<MapError> = None;
    let mut posed_any = false;
    // Work done by *failed* attempts still counts: accumulate every posed
    // attempt's statistics so a timeout/UNSAT verdict reports the whole loop's
    // solver effort, not just the final attempt's.
    let mut acc = SynthesisStats::default();
    for template in ranked {
        // A raised cancel flag already stops the in-flight attempt through the
        // solver interrupt; checking it here too keeps the loop from posing
        // every remaining template just to watch each one bail out.
        if config.cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed)) {
            timed_out = true;
            break;
        }
        let Some(remaining) = config.timeout.checked_sub(start.elapsed()) else {
            timed_out = true;
            break;
        };
        // Each attempt solves under the *remaining* budget but is cache-keyed
        // under the requested one — the remainder depends on how long earlier
        // attempts ran, and a wall-clock-dependent key could never hit warm.
        let attempt = MapConfig {
            timeout: remaining,
            cache_budget: Some(config.cache_budget.unwrap_or(config.timeout)),
            ..config.clone()
        };
        match map_prepared_design(&spec, template, arch, &attempt) {
            Ok(outcome) if outcome.is_success() => return Ok(outcome),
            Ok(MapOutcome::Timeout { stats, .. }) => {
                posed_any = true;
                timed_out = true;
                acc.absorb(&stats);
            }
            Ok(outcome) => {
                posed_any = true;
                acc.absorb(outcome.stats());
                if unsat.is_none() {
                    unsat = Some(outcome);
                }
            }
            Err(e) => last_error = Some(e),
        }
    }
    if !posed_any && !timed_out {
        return Err(last_error.unwrap_or(MapError::Sketch(SketchError::Unsupported(
            "no template applies to this design on this architecture".to_string(),
        ))));
    }
    if timed_out {
        return Ok(MapOutcome::Timeout { elapsed: start.elapsed(), stats: Box::new(acc) });
    }
    let mut unsat = unsat.expect("posed_any without timeout implies an UNSAT outcome");
    if let MapOutcome::Unsat { stats, .. } = &mut unsat {
        // The verdict came from one attempt; the statistics cover them all.
        **stats = acc;
    }
    Ok(unsat)
}

/// Maps a behavioral mini-Verilog module (the partial-design-mapping workflow of
/// §2.2: put the module in its own file, run Lakeroad on it).
///
/// # Errors
/// See [`map_design`]; additionally returns [`MapError::Frontend`] if the Verilog
/// does not parse or elaborate.
pub fn map_verilog(
    verilog: &str,
    template: Template,
    arch: &Architecture,
    config: &MapConfig,
) -> Result<MapOutcome, MapError> {
    let spec =
        lr_hdl::parse_and_elaborate(verilog).map_err(|e| MapError::Frontend(e.to_string()))?;
    map_design(&spec, template, arch, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_bv::BitVec;
    use lr_ir::{BvOp, ProgBuilder, StreamInputs};

    fn quick_config() -> MapConfig {
        MapConfig::single_solver().with_timeout(Duration::from_secs(60))
    }

    #[test]
    fn pipeline_depth_counts_register_stages() {
        let mut b = ProgBuilder::new("p");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let sum = b.op2(BvOp::Add, a, bb);
        let r1 = b.reg(sum, 8);
        let r2 = b.reg(r1, 8);
        let prog = b.finish(r2);
        assert_eq!(pipeline_depth(&prog), 2);

        let mut b = ProgBuilder::new("comb");
        let a = b.input("a", 8);
        let prog = b.finish(a);
        assert_eq!(pipeline_depth(&prog), 0);
    }

    #[test]
    fn resources_classify_single_dsp() {
        let r = Resources { dsps: 1, logic_elements: 0, registers: 0 };
        assert!(r.is_single_dsp());
        let r = Resources { dsps: 1, logic_elements: 4, registers: 16 };
        assert!(!r.is_single_dsp());
    }

    #[test]
    fn maps_a_multiply_to_one_intel_dsp() {
        let mut b = ProgBuilder::new("mul8");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Mul, a, bb);
        let spec = b.finish(out);
        let arch = Architecture::intel_cyclone10lp();
        let outcome = map_design(&spec, Template::Dsp, &arch, &quick_config()).unwrap();
        let mapped = outcome.success().expect("multiply should map to the Intel DSP");
        assert!(mapped.resources.is_single_dsp(), "resources: {:?}", mapped.resources);
        assert!(mapped.verilog.contains("cyclone10lp_mac_mult"));
        // Cross-check the implementation against the spec on a few inputs.
        for (av, bv) in [(0u64, 0u64), (3, 5), (255, 255), (17, 200)] {
            let env = StreamInputs::from_constants([
                ("a".to_string(), BitVec::from_u64(av, 8)),
                ("b".to_string(), BitVec::from_u64(bv, 8)),
            ]);
            assert_eq!(
                spec.interp(&env, 0).unwrap(),
                mapped.implementation.interp(&env, 0).unwrap(),
                "a={av} b={bv}"
            );
        }
    }

    #[test]
    fn maps_the_running_example_to_one_dsp48e2() {
        // (a + b) * c & d with one pipeline stage, 8 bits.
        let mut b = ProgBuilder::new("add_mul_and");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let c = b.input("c", 8);
        let d = b.input("d", 8);
        let sum = b.op2(BvOp::Add, a, bb);
        let prod = b.op2(BvOp::Mul, sum, c);
        let masked = b.op2(BvOp::And, prod, d);
        let r = b.reg(masked, 8);
        let spec = b.finish(r);

        let arch = Architecture::xilinx_ultrascale_plus();
        let outcome = map_design(&spec, Template::Dsp, &arch, &quick_config()).unwrap();
        let mapped = outcome.success().expect("add_mul_and should map to one DSP48E2");
        assert!(mapped.resources.is_single_dsp(), "resources: {:?}", mapped.resources);
        assert!(mapped.verilog.contains("DSP48E2"));
        let env = StreamInputs::from_constants([
            ("a".to_string(), BitVec::from_u64(3, 8)),
            ("b".to_string(), BitVec::from_u64(5, 8)),
            ("c".to_string(), BitVec::from_u64(7, 8)),
            ("d".to_string(), BitVec::from_u64(0x3F, 8)),
        ]);
        for t in 1..4 {
            assert_eq!(
                spec.interp(&env, t).unwrap(),
                mapped.implementation.interp(&env, t).unwrap(),
                "cycle {t}"
            );
        }
    }

    /// Template-free mapping: the guidance ranks the DSP first for a multiply and
    /// the run succeeds without the caller naming a template.
    #[test]
    fn auto_mapping_follows_the_guidance_ranking() {
        let mut b = ProgBuilder::new("mul8_auto");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Mul, a, bb);
        let spec = b.finish(out);
        let arch = Architecture::intel_cyclone10lp();
        let outcome = map_design_auto(&spec, &arch, &quick_config()).unwrap();
        let mapped = outcome.success().expect("auto mapping should find the DSP");
        assert!(mapped.resources.is_single_dsp(), "resources: {:?}", mapped.resources);
    }

    /// With the e-graph disabled, auto mapping must not saturate anything — the
    /// ranking falls back to a syntactic scan — and still succeed.
    #[test]
    fn auto_mapping_respects_the_egraph_switch() {
        let mut b = ProgBuilder::new("mul8_auto_noeg");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Mul, a, bb);
        let spec = b.finish(out);
        let arch = Architecture::intel_cyclone10lp();
        let config = MapConfig { egraph: false, ..quick_config() };
        let outcome = map_design_auto(&spec, &arch, &config).unwrap();
        assert!(outcome.is_success());
    }

    /// A spec whose multiply hides behind a DSP-style negate path still maps once
    /// saturation canonicalizes it — and the result is equivalent to the
    /// *original* (disguised) spec.
    #[test]
    fn saturated_spec_mapping_preserves_original_semantics() {
        // 0 − (a · (0 − b))  ≡  a · b.
        let mut b = ProgBuilder::new("mul_disguised");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let zero = b.constant_u64(0, 8);
        let nb = b.op2(BvOp::Sub, zero, bb);
        let prod = b.op2(BvOp::Mul, a, nb);
        let out = b.op2(BvOp::Sub, zero, prod);
        let spec = b.finish(out);
        let arch = Architecture::intel_cyclone10lp();
        let outcome = map_design(&spec, Template::Dsp, &arch, &quick_config()).unwrap();
        let mapped = outcome.success().expect("disguised multiply should map");
        for (av, bv) in [(0u64, 0u64), (3, 5), (255, 254), (17, 200)] {
            let env = StreamInputs::from_constants([
                ("a".to_string(), BitVec::from_u64(av, 8)),
                ("b".to_string(), BitVec::from_u64(bv, 8)),
            ]);
            assert_eq!(
                spec.interp(&env, 0).unwrap(),
                mapped.implementation.interp(&env, 0).unwrap(),
                "a={av} b={bv}"
            );
        }
    }

    /// The `--no-egraph` pipeline still maps (ablation path stays usable).
    #[test]
    fn mapping_without_the_egraph_still_works() {
        let mut b = ProgBuilder::new("mul8_no_egraph");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let out = b.op2(BvOp::Mul, a, bb);
        let spec = b.finish(out);
        let arch = Architecture::intel_cyclone10lp();
        let config = MapConfig { egraph: false, ..quick_config() };
        let outcome = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
        assert!(outcome.is_success());
    }

    #[test]
    fn unmappable_design_reports_unsat_or_timeout() {
        // A three-operand chain with two multiplications cannot fit one DSP.
        let mut b = ProgBuilder::new("mul_mul");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let c = b.input("c", 8);
        let p1 = b.op2(BvOp::Mul, a, bb);
        let p2 = b.op2(BvOp::Mul, p1, c);
        let spec = b.finish(p2);
        let arch = Architecture::intel_cyclone10lp();
        let mut config = quick_config();
        config.timeout = Duration::from_secs(20);
        let outcome = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
        assert!(!outcome.is_success(), "two chained multiplies cannot be one mac_mult");
    }

    #[test]
    fn frontend_errors_are_reported() {
        let err = map_verilog(
            "module broken(",
            Template::Dsp,
            &Architecture::xilinx_ultrascale_plus(),
            &quick_config(),
        )
        .unwrap_err();
        assert!(matches!(err, MapError::Frontend(_)));
    }
}
