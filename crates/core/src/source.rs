//! The unified design frontend: one [`DesignSource`] enum naming every way a
//! design can reach the mapper — a §5.1 suite microbenchmark, behavioral
//! mini-Verilog (file or inline), or a structural netlist (AIGER/`.bench`,
//! file or inline) — and one [`DesignSource::resolve`] turning any of them
//! into an ℒlr spec.
//!
//! Before this module existed the CLI, the batch manifest parser, and the
//! daemon protocol each re-implemented the `bench:` / Verilog-path split, and
//! the CLI faked an "elaborate" trace span for suite benches so traces looked
//! uniform. `resolve` is now the single place that classification lives, and
//! every input kind reports *its own* per-stage timing:
//!
//! | source            | spans emitted                               |
//! |-------------------|---------------------------------------------|
//! | suite bench       | `suite-build`                               |
//! | Verilog           | `elaborate` → `hdl-parse`, `hdl-elaborate` (from `lr_hdl`) |
//! | structural netlist| `netlist-parse`, `netlist-elaborate`        |

use std::path::{Path, PathBuf};

use lr_arch::ArchName;
use lr_ir::Prog;

use crate::suite::{suite_for, FULL_WIDTHS};

/// Every way a design can be handed to the mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignSource {
    /// A §5.1 microbenchmark of the target architecture's suite, by name.
    Bench(String),
    /// A behavioral mini-Verilog file on disk.
    VerilogPath(PathBuf),
    /// Behavioral mini-Verilog source text (the daemon's `verilog` field).
    VerilogInline {
        /// Name to report if elaboration does not produce one.
        name: String,
        /// The module source.
        text: String,
    },
    /// A structural netlist file on disk — `.aag`, `.aig`, or `.bench`,
    /// decided by extension (falling back to header sniffing).
    NetlistPath(PathBuf),
    /// Structural netlist text (the daemon's `netlist` field); the format is
    /// sniffed from the content.
    NetlistInline {
        /// Name for the resulting spec.
        name: String,
        /// The netlist source (ASCII AIGER or `.bench`).
        text: String,
    },
}

impl DesignSource {
    /// Classifies a CLI/manifest design spelling: `bench:<name>` is a suite
    /// microbenchmark, a path with a netlist extension (`.aag`/`.aig`/
    /// `.bench`) is a structural netlist, anything else is a Verilog path.
    /// Relative paths are anchored at `base`.
    pub fn from_spec(spec: &str, base: &Path) -> DesignSource {
        if let Some(name) = spec.strip_prefix("bench:") {
            return DesignSource::Bench(name.to_string());
        }
        if lr_aig::parse::is_netlist_path(spec) {
            return DesignSource::NetlistPath(base.join(spec));
        }
        DesignSource::VerilogPath(base.join(spec))
    }

    /// A short label for job names and error messages: the bench spelling, the
    /// path, or the inline design's name.
    pub fn label(&self) -> String {
        match self {
            DesignSource::Bench(name) => format!("bench:{name}"),
            DesignSource::VerilogPath(path) | DesignSource::NetlistPath(path) => {
                path.display().to_string()
            }
            DesignSource::VerilogInline { name, .. } | DesignSource::NetlistInline { name, .. } => {
                name.clone()
            }
        }
    }

    /// Resolves the source into an ℒlr spec, emitting honest per-stage trace
    /// spans (see the module docs for the span names per input kind).
    ///
    /// `arch` selects which architecture's suite `Bench` names index into; the
    /// other variants ignore it.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown bench names, unreadable
    /// files, and designs that fail to elaborate or parse.
    pub fn resolve(&self, arch: ArchName) -> Result<Prog, String> {
        match self {
            DesignSource::Bench(name) => {
                // Suite specs are built programmatically — no frontend runs, so
                // no `elaborate` span should pretend one did.
                let mut sp = lr_trace::span("suite-build");
                sp.attr("suite_bench", 1);
                suite_for(arch, FULL_WIDTHS)
                    .into_iter()
                    .find(|b| b.name == *name)
                    .map(|b| b.build())
                    .ok_or_else(|| format!("no microbenchmark `{name}` in the {arch} suite"))
            }
            DesignSource::VerilogPath(path) => {
                let verilog = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
                lr_hdl::parse_and_elaborate(&verilog)
                    .map_err(|e| format!("`{}` does not elaborate: {e}", path.display()))
            }
            DesignSource::VerilogInline { text, .. } => lr_hdl::parse_and_elaborate(text)
                .map_err(|e| format!("verilog does not elaborate: {e}")),
            DesignSource::NetlistPath(path) => {
                let bytes = std::fs::read(path)
                    .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
                let name = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "netlist".to_string());
                netlist_to_spec(&bytes, path.to_str(), &name)
                    .map_err(|e| format!("`{}`: {e}", path.display()))
            }
            DesignSource::NetlistInline { name, text } => {
                netlist_to_spec(text.as_bytes(), None, name)
                    .map_err(|e| format!("netlist `{name}`: {e}"))
            }
        }
    }
}

/// Parses netlist bytes and converts them to a one-bit-per-output ℒlr spec,
/// under the two netlist-specific trace stages.
fn netlist_to_spec(bytes: &[u8], path_hint: Option<&str>, name: &str) -> Result<Prog, String> {
    let aig = {
        let mut sp = lr_trace::span("netlist-parse");
        let aig = lr_aig::parse_netlist(bytes, path_hint).map_err(|e| e.to_string())?;
        sp.attr("aig_ands", aig.num_ands() as u64);
        sp.attr("aig_latches", aig.num_latches() as u64);
        aig.with_name(sanitize_name(name))
    };
    if aig.outputs().is_empty() {
        return Err("netlist has no outputs to map".to_string());
    }
    let _sp = lr_trace::span("netlist-elaborate");
    Ok(aig.to_prog())
}

/// Netlist file stems become ℒlr program names (and eventually Verilog module
/// names), so squeeze them into identifier shape.
fn sanitize_name(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_spellings_classify_correctly() {
        let base = Path::new("/designs");
        assert_eq!(
            DesignSource::from_spec("bench:mul_w8_s1", base),
            DesignSource::Bench("mul_w8_s1".to_string())
        );
        assert_eq!(
            DesignSource::from_spec("adder.v", base),
            DesignSource::VerilogPath(PathBuf::from("/designs/adder.v"))
        );
        for netlist in ["c17.bench", "core.aag", "sub/dir/core.aig"] {
            assert!(
                matches!(DesignSource::from_spec(netlist, base), DesignSource::NetlistPath(_)),
                "{netlist}"
            );
        }
        // Absolute paths ignore the base.
        assert_eq!(
            DesignSource::from_spec("/abs/x.v", base),
            DesignSource::VerilogPath(PathBuf::from("/abs/x.v"))
        );
    }

    #[test]
    fn bench_sources_resolve_against_the_arch_suite() {
        let suite = suite_for(ArchName::IntelCyclone10Lp, FULL_WIDTHS);
        let name = suite[0].name.clone();
        let spec = DesignSource::Bench(name.clone()).resolve(ArchName::IntelCyclone10Lp).unwrap();
        assert_eq!(spec.name(), name);

        let err = DesignSource::Bench("no_such_bench".to_string())
            .resolve(ArchName::IntelCyclone10Lp)
            .unwrap_err();
        assert!(err.contains("no microbenchmark"), "{err}");
    }

    #[test]
    fn inline_verilog_and_netlists_resolve() {
        let verilog = DesignSource::VerilogInline {
            name: "m".to_string(),
            text: "module m(input clk, input [7:0] a, b, output [7:0] out);\n\
                   assign out = a & b;\nendmodule\n"
                .to_string(),
        };
        assert!(verilog.resolve(ArchName::IntelCyclone10Lp).is_ok());

        let netlist = DesignSource::NetlistInline {
            name: "tiny".to_string(),
            text: "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = NAND(a, b)\n".to_string(),
        };
        let spec = netlist.resolve(ArchName::IntelCyclone10Lp).unwrap();
        assert_eq!(spec.name(), "tiny");
        assert_eq!(spec.free_vars().len(), 2);

        let bad = DesignSource::NetlistInline {
            name: "bad".to_string(),
            text: "aag 1 1 0 1 1\n".to_string(),
        };
        let err = bad.resolve(ArchName::IntelCyclone10Lp).unwrap_err();
        assert!(err.contains("netlist `bad`"), "{err}");
    }

    #[test]
    fn missing_files_report_the_path() {
        let err = DesignSource::VerilogPath(PathBuf::from("/nonexistent/x.v"))
            .resolve(ArchName::IntelCyclone10Lp)
            .unwrap_err();
        assert!(err.contains("cannot read `/nonexistent/x.v`"), "{err}");
        let err = DesignSource::NetlistPath(PathBuf::from("/nonexistent/x.aag"))
            .resolve(ArchName::IntelCyclone10Lp)
            .unwrap_err();
        assert!(err.contains("cannot read `/nonexistent/x.aag`"), "{err}");
    }

    #[test]
    fn netlists_without_outputs_are_rejected() {
        let src = DesignSource::NetlistInline {
            name: "noout".to_string(),
            text: "aag 1 1 0 0 0\n2\n".to_string(),
        };
        let err = src.resolve(ArchName::IntelCyclone10Lp).unwrap_err();
        assert!(err.contains("no outputs"), "{err}");
    }
}
